package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"testing"

	"mb2/internal/hw"
)

// TestProcessListKillHammer races list, kill, and drain against live
// statement traffic under the race detector: W worker sessions each run
// a statement loop while a killer cancels sessions and a drainer pulls
// observations mid-flight. The exactly-once accounting must balance:
// every completed statement's observation appears in exactly one drain,
// killed statements in none.
func TestProcessListKillHammer(t *testing.T) {
	_, reg := testDB(t, 100)
	const workers = 8
	const statements = 60

	sessions := make([]*Session, workers)
	for i := range sessions {
		s, err := reg.Open(Options{Contenders: workers})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}

	var traffic, drainer sync.WaitGroup
	stop := make(chan struct{})

	// Drainer: pulls the live process list's observations concurrently
	// with execution, accumulating totals.
	drained := make(chan float64, 1)
	drainer.Add(1)
	go func() {
		defer drainer.Done()
		total := 0.0
		for {
			select {
			case <-stop:
				drained <- total
				return
			default:
				obs := reg.DrainObservations()
				for _, c := range obs.Counts {
					total += c
				}
			}
		}
	}()

	// Killer: kills half the sessions at staggered points.
	traffic.Add(1)
	go func() {
		defer traffic.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < workers/2; i++ {
			id := sessions[rng.Intn(workers)].ID
			reg.Kill(id, nil)
			reg.List() // exercise list against the races
		}
	}()

	// Workers: seeded statement loops that stop when killed.
	workerErrs := make([]error, workers)
	for w := 0; w < workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < statements; i++ {
				q := fmt.Sprintf("SELECT * FROM t WHERE k = %d", rng.Intn(100))
				if i%7 == 0 {
					q = "SELECT grp, count(grp) FROM t GROUP BY grp"
				}
				if _, _, err := sessions[w].ExecSQL(q); err != nil {
					if errors.Is(err, ErrKilled) {
						return
					}
					workerErrs[w] = err
					return
				}
			}
		}(w)
	}

	// Traffic drains fully before the drainer stops, so its last pass
	// plus the final drain below see every completed statement.
	traffic.Wait()
	close(stop)
	drainer.Wait()

	completed := uint64(0)
	for _, s := range sessions {
		completed += s.Info().Queries
	}
	total := <-drained
	// Final drain catches anything buffered after the drainer stopped.
	final := reg.DrainObservations()
	for _, c := range final.Counts {
		total += c
	}
	for w, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if total != float64(completed) {
		t.Fatalf("drained %v observations, %d statements completed: exactly-once violated", total, completed)
	}
	for _, s := range sessions {
		s.Close()
	}
	if reg.Len() != 0 {
		t.Fatalf("%d sessions live after closes", reg.Len())
	}
}

// soakDigest runs the deterministic seeded soak — sessions × statements
// of seeded read traffic — and folds every session's results and the
// merged observation stream into one digest, merging in session-ID
// order. jobs controls the worker parallelism; the digest must not
// depend on it.
func soakDigest(t *testing.T, reg *Registry, seed int64, nSessions, nStatements, jobs int) uint64 {
	t.Helper()
	sessions := make([]*Session, nSessions)
	for i := range sessions {
		s, err := reg.Open(Options{Contenders: float64(nSessions)})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	perSession := make([]uint64, nSessions)
	errs := make([]error, nSessions)

	var wg sync.WaitGroup
	sem := make(chan struct{}, jobs)
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			h := fnv.New64a()
			var buf [8]byte
			rng := rand.New(rand.NewSource(seed ^ int64(i+1)))
			for q := 0; q < nStatements; q++ {
				var query string
				switch q % 3 {
				case 0:
					query = fmt.Sprintf("SELECT * FROM t WHERE k = %d", rng.Intn(100))
				case 1:
					query = "SELECT grp, count(grp) FROM t GROUP BY grp"
				default:
					query = fmt.Sprintf("SELECT * FROM t WHERE grp = %d", rng.Intn(7))
				}
				b, _, err := sessions[i].ExecSQL(query)
				if err != nil {
					errs[i] = err
					return
				}
				binary.LittleEndian.PutUint64(buf[:], uint64(len(b.Rows)))
				h.Write(buf[:])
			}
			perSession[i] = h.Sum64()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	// Fold per-session digests in ID (== index) order, then the merged
	// observation stream drained from the process list.
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, d := range perSession {
		put(d)
	}
	obs := reg.DrainObservations()
	for _, name := range obs.Templates() {
		h.Write([]byte(name))
		put(uint64(obs.Counts[name]))
		iso := obs.Iso[name]
		put(uint64(iso.Vec()[hw.LabelElapsedUS] * 1e6))
	}
	for _, s := range sessions {
		s.Close()
	}
	return h.Sum64()
}

// TestSoakDeterministicReplay is the seeded soak: N sessions × M
// statements, replayed bit-exactly — the digest is identical across
// same-seed runs and across worker parallelism (serial vs 8-way).
func TestSoakDeterministicReplay(t *testing.T) {
	_, reg := testDB(t, 100)
	a := soakDigest(t, reg, 42, 16, 30, 8)
	b := soakDigest(t, reg, 42, 16, 30, 8)
	if a != b {
		t.Fatalf("same-seed soak digests differ: %#x vs %#x", a, b)
	}
	serial := soakDigest(t, reg, 42, 16, 30, 1)
	if a != serial {
		t.Fatalf("soak digest depends on parallelism: %#x (8-way) vs %#x (serial)", a, serial)
	}
	other := soakDigest(t, reg, 43, 16, 30, 8)
	if a == other {
		t.Fatalf("different seeds produced identical digests %#x", a)
	}
}
