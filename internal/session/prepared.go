package session

import (
	"fmt"

	"mb2/internal/exec"
	"mb2/internal/hw"
	"mb2/internal/plan"
	"mb2/internal/sql"
)

// Prepared is one prepared statement: parsed once at Prepare, planned
// lazily, with the physical plan cached against the engine ConfigVersion
// it was built at. A knob change, repartition, or index publish advances
// the version and the next execution transparently replans — that is how
// a long-lived session picks up an index the self-driving loop published
// underneath it without re-preparing.
type Prepared struct {
	// Name keys the statement in its session and names the observation
	// template, so every execution of a prepared statement forecasts
	// under one stable template regardless of the statement text.
	Name string
	// SQL is the original statement text.
	SQL string

	stmt sql.Statement

	// Plan cache, owned by the session worker (no lock: a session runs
	// one statement at a time).
	node    plan.Node
	fp      uint64
	version uint64
	planned bool
	// replans counts cache misses after the initial planning — the
	// ConfigVersion invalidations observability hooks report.
	replans int
}

// Prepare parses the statement and registers it under name, replacing
// any previous statement with that name. Only plannable statements
// (SELECT and DML) can be prepared; DDL must go through ExecSQL.
func (s *Session) Prepare(name, query string) (*Prepared, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case sql.SelectStmt, sql.InsertStmt, sql.UpdateStmt, sql.DeleteStmt:
	default:
		return nil, fmt.Errorf("session: cannot prepare %T (DDL executes directly)", st)
	}
	p := &Prepared{Name: name, SQL: query, stmt: st}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == Closed {
		return nil, ErrClosed
	}
	if s.prepared == nil {
		s.prepared = make(map[string]*Prepared)
	}
	s.prepared[name] = p
	return p, nil
}

// Lookup returns a prepared statement by name, or nil.
func (s *Session) Lookup(name string) *Prepared {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prepared[name]
}

// PreparedCount returns the number of cached prepared statements.
func (s *Session) PreparedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.prepared)
}

// Replans returns how many times the statement was replanned after a
// ConfigVersion move (0 while the cached plan has stayed valid).
func (p *Prepared) Replans() int { return p.replans }

// plan returns the cached physical plan, replanning when the engine
// configuration has moved since it was built.
func (p *Prepared) plan(s *Session) (plan.Node, uint64, error) {
	v := s.ec.DB.ConfigVersion()
	if p.planned && v == p.version {
		return p.node, p.fp, nil
	}
	node, err := sql.NewPlanner(s.ec.DB).Plan(p.stmt)
	if err != nil {
		return nil, 0, err
	}
	if p.planned {
		p.replans++
	}
	p.node = node
	p.fp = plan.Fingerprint(node)
	p.version = v
	p.planned = true
	return p.node, p.fp, nil
}

// ExecPrepared executes a prepared statement by name, planning (or
// replanning, when the engine configuration moved) as needed.
func (s *Session) ExecPrepared(name string) (*exec.Batch, hw.Metrics, error) {
	s.mu.Lock()
	p := s.prepared[name]
	s.mu.Unlock()
	if p == nil {
		return nil, hw.Metrics{}, fmt.Errorf("session: no prepared statement %q", name)
	}
	node, fp, err := p.plan(s)
	if err != nil {
		return nil, hw.Metrics{}, err
	}
	if isDML(node) {
		return s.execDML(p.Name, fp, node)
	}
	return s.ExecPlan(p.Name, fp, node)
}
