package session

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"mb2/internal/wal"
)

// Race-hammer for the checkpoint-quiesce vs. kill interplay (run under
// -race): workers stream auto-commit DML through their sessions, a killer
// hammers process-list kills, and a checkpointer drives Registry.Checkpoint
// the whole time. The old engine-level quiesce was check-then-act — a
// checkpoint could observe zero active transactions and then snapshot while
// a freshly admitted statement (possibly one being killed that instant) was
// mid-write. With the registry gate, every checkpoint must succeed, the
// checkpoint epoch must advance exactly once per success, the admission
// counters must balance, and the final checkpoint image must replay to the
// exact surviving row set.
func TestCheckpointQuiesceKillRaceHammer(t *testing.T) {
	db, reg := testDB(t, 8)
	const workers = 4
	const stmtsPerWorker = 60

	var kills atomic.Uint64
	var wg sync.WaitGroup
	done := make(chan struct{})

	// Killer: a bounded hammer of kills across the live ID range, yielding
	// between attempts so the workers keep making progress.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := uint64(1); ; id++ {
			select {
			case <-done:
				return
			default:
			}
			if reg.Kill(id%64, ErrKilled) {
				kills.Add(1)
			}
			runtime.Gosched()
		}
	}()

	// Checkpointer: quiesce and snapshot repeatedly while the workload and
	// the kills are in full flight.
	var ckptOK uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := reg.Checkpoint(nil); err != nil {
				t.Errorf("checkpoint under quiesce gate failed: %v", err)
				return
			}
			ckptOK++
			runtime.Gosched()
		}
	}()

	var opened, execed atomic.Uint64
	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(w int) {
			defer workerWG.Done()
			for i := 0; i < stmtsPerWorker; i++ {
				s, err := reg.Open(Options{Contenders: workers})
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				opened.Add(1)
				q := fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 1.5)", 1000+w*stmtsPerWorker+i, w)
				if _, _, err := s.ExecSQL(q); err == nil {
					execed.Add(1)
				} else if !errors.Is(err, ErrKilled) {
					t.Errorf("exec: %v", err)
				}
				s.Close()
			}
		}(w)
	}
	workerWG.Wait()
	close(done)
	wg.Wait()

	// Counter consistency: every worker session was admitted and closed
	// again; only the seeding session (already closed) preceded them.
	admitted, rejected, killed := reg.Counters()
	if rejected != 0 {
		t.Fatalf("unlimited registry rejected %d sessions", rejected)
	}
	if want := opened.Load() + 1; admitted != want {
		t.Fatalf("admitted = %d, want %d", admitted, want)
	}
	if killed != kills.Load() {
		t.Fatalf("killed counter %d, successful kill calls %d", killed, kills.Load())
	}
	if reg.Len() != 0 {
		t.Fatalf("%d sessions leaked in the process list", reg.Len())
	}

	// Epoch consistency: the log epoch advances exactly once per successful
	// checkpoint — a checkpoint torn by the race would leave them skewed.
	if reg.Checkpoints() != ckptOK {
		t.Fatalf("registry counted %d checkpoints, checkpointer saw %d", reg.Checkpoints(), ckptOK)
	}
	if got := db.WAL.Epoch(); got != ckptOK {
		t.Fatalf("WAL epoch %d after %d successful checkpoints", got, ckptOK)
	}

	// State consistency: one final quiesced checkpoint must capture exactly
	// the committed rows, and recovering from it (plus the empty log tail)
	// must agree with the live row count — no torn half-applied statements.
	st, err := reg.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	live := int(db.RowCount("t"))
	if st.Rows != live {
		t.Fatalf("final checkpoint snapshotted %d rows, live table has %d", st.Rows, live)
	}
	ck, ok, err := wal.LastValidCheckpoint(db.CheckpointImage())
	if err != nil || !ok {
		t.Fatalf("final image: ok=%v err=%v", ok, err)
	}
	if len(ck.Records) != live || ck.Epoch != db.WAL.Epoch() {
		t.Fatalf("recovered checkpoint: %d records at epoch %d, want %d at %d",
			len(ck.Records), ck.Epoch, live, db.WAL.Epoch())
	}
}
