package session

import (
	"context"
	"sort"
	"sync"

	"mb2/internal/engine"
	"mb2/internal/exec"
	"mb2/internal/hw"
	"mb2/internal/metrics"
)

// ProcessInfo is one process-list row.
type ProcessInfo struct {
	ID        uint64
	State     State
	Statement string
	Queries   uint64
	Failed    uint64
}

// Options configures one session at admission.
type Options struct {
	// Contenders is the latch-contention scale the execution context
	// charges with (the number of threads concurrently mutating shared
	// structures). Zero means "the live session count at admission",
	// which is what a wire server wants; deterministic harnesses pass
	// their fixed worker count explicitly.
	Contenders float64
}

// Registry is the admission controller and process list: every live
// session, whatever front end opened it, is visible (and killable) here,
// and the self-driving loop drains its interval observations from here.
type Registry struct {
	db *engine.DB
	// MaxSessions caps concurrent sessions; Open fails with ErrAdmission
	// beyond it. Zero or negative means unlimited.
	max int

	mu       sync.Mutex
	next     uint64
	sessions map[uint64]*Session
	admitted uint64
	rejected uint64
	killed   uint64
	peak     int

	// gate is the checkpoint quiesce barrier: every statement holds it in
	// read mode for its whole execution (including the auto-commit
	// commit/abort), and Checkpoint takes it in write mode. That turns the
	// engine's check-then-act quiesce ("error if any transaction is
	// active") into a real barrier: once Checkpoint holds the gate, no
	// registry statement is mid-flight and none can start, so the snapshot
	// cannot race an in-flight write — even one whose session is killed
	// while the checkpoint is quiescing (the kill aborts the statement at
	// an operator boundary, the abort retires the transaction, and only
	// then is the read side released).
	gate sync.RWMutex

	checkpoints uint64 // successful Checkpoint calls
}

// NewRegistry returns a process list over db admitting at most
// maxSessions concurrent sessions (<= 0 for unlimited).
func NewRegistry(db *engine.DB, maxSessions int) *Registry {
	return &Registry{db: db, max: maxSessions, sessions: make(map[uint64]*Session)}
}

// DB returns the engine the registry's sessions execute against.
func (r *Registry) DB() *engine.DB { return r.db }

// Open admits a new session, sampling the engine's live knobs for its
// execution context (mode, scan DOP). IDs ascend in admission order —
// the order observation merges use.
func (r *Registry) Open(opts Options) (*Session, error) {
	r.mu.Lock()
	if r.max > 0 && len(r.sessions) >= r.max {
		r.rejected++
		r.mu.Unlock()
		return nil, ErrAdmission
	}
	r.next++
	id := r.next
	r.admitted++
	contenders := opts.Contenders
	if contenders <= 0 {
		contenders = float64(len(r.sessions) + 1)
	}
	r.mu.Unlock()

	knobs := r.db.Knobs()
	dop := knobs.ScanDOP
	if dop < 1 {
		dop = 1
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Session{
		ID:     id,
		reg:    r,
		ctx:    ctx,
		cancel: cancel,
		stats:  NewStats(),
	}
	s.ec = &exec.Ctx{
		DB:         r.db,
		Tracker:    metrics.NewTracker(nil, hw.NewThread(r.db.Machine.CPU)),
		Mode:       knobs.ExecutionMode,
		Contenders: contenders,
		DOP:        dop,
		Observer:   s.stats,
		Interrupt:  s.interrupted,
	}

	r.mu.Lock()
	// Re-check the cap: admissions racing between the two critical
	// sections may not exceed it.
	if r.max > 0 && len(r.sessions) >= r.max {
		r.rejected++
		r.admitted--
		r.mu.Unlock()
		cancel(ErrAdmission)
		return nil, ErrAdmission
	}
	r.sessions[id] = s
	if len(r.sessions) > r.peak {
		r.peak = len(r.sessions)
	}
	r.mu.Unlock()
	return s, nil
}

// remove drops a closed session from the list (called by Session.Close).
func (r *Registry) remove(id uint64) {
	r.mu.Lock()
	delete(r.sessions, id)
	r.mu.Unlock()
}

// Get returns a live session by ID, or nil.
func (r *Registry) Get(id uint64) *Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions[id]
}

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Peak returns the highest concurrent-session count ever reached.
func (r *Registry) Peak() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peak
}

// Counters returns cumulative admission-control statistics: sessions
// admitted, admissions rejected at capacity, and kills issued.
func (r *Registry) Counters() (admitted, rejected, killed uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.admitted, r.rejected, r.killed
}

// live snapshots the live sessions in ascending ID order.
func (r *Registry) live() []*Session {
	r.mu.Lock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// List returns the process list: one row per live session, ascending ID.
func (r *Registry) List() []ProcessInfo {
	live := r.live()
	out := make([]ProcessInfo, len(live))
	for i, s := range live {
		out[i] = s.Info()
	}
	return out
}

// Kill cancels a live session by ID (the process-list kill). It reports
// whether the ID was live; the session stays listed — state Killed —
// until whoever owns it closes it, exactly like a killed backend
// lingering in a real process list until the client disconnects.
func (r *Registry) Kill(id uint64, cause error) bool {
	r.mu.Lock()
	s := r.sessions[id]
	if s != nil {
		r.killed++
	}
	r.mu.Unlock()
	if s == nil {
		return false
	}
	s.Kill(cause)
	return true
}

// beginExec blocks the calling statement while a checkpoint is quiescing
// and otherwise admits it; endExec retires it. Statements hold the gate in
// read mode for their entire execution (session.beginStatement pairs the
// two around every statement path).
func (r *Registry) beginExec() { r.gate.RLock() }
func (r *Registry) endExec()   { r.gate.RUnlock() }

// Checkpoint quiesces the process list and checkpoints the engine: it
// blocks new statements, waits for every in-flight statement — including
// ones being killed right now — to retire its transaction, and only then
// snapshots. Sessions holding an explicit transaction open across
// statements still fail the engine's active-transaction check, which comes
// back as a clean error with every counter and the checkpoint epoch
// untouched. Snapshot, encode, and device writes are charged to th.
func (r *Registry) Checkpoint(th *hw.Thread) (engine.CheckpointStats, error) {
	r.gate.Lock()
	defer r.gate.Unlock()
	st, err := r.db.Checkpoint(th)
	if err == nil {
		r.mu.Lock()
		r.checkpoints++
		r.mu.Unlock()
	}
	return st, err
}

// Checkpoints returns how many registry checkpoints have succeeded.
func (r *Registry) Checkpoints() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checkpoints
}

// DrainObservations takes every live session's buffered observations and
// merges them in ascending session-ID order — the deterministic
// serial-order reduction. This is the control loop's per-interval pull:
// one call returns everything the process list saw since the last one.
func (r *Registry) DrainObservations() Observation {
	merged := NewObservation()
	for _, s := range r.live() {
		merged.Merge(s.stats.Drain())
	}
	return merged
}
