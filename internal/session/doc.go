// Package session is the first-class session layer between the engine
// core and every front end: the in-process selfdrive loop, the wire
// server (internal/server), and the CLIs all drive the engine through it.
//
// A Session owns everything one client connection needs: a
// context.Context whose cancellation is the kill switch, a private
// execution context (one worker thread, arena, and join-table per
// session), a prepared-statement cache whose plans are keyed to the
// engine's ConfigVersion (a knob change or index publish invalidates
// them and the next execution replans), and a private observation
// buffer (Stats) that implements exec.QueryObserver.
//
// The Registry is the admission controller and process list: it caps
// concurrent sessions, lists every live session with its state and
// currently-running statement, kills by ID, and drains the per-session
// observation buffers — in ascending session-ID order, the serial-order
// reduction that keeps float sums bit-identical at any parallelism.
// The self-driving loop consumes its live metrics stream from here:
// what it forecasts and acts on is whatever traffic the process list
// saw, whether that traffic arrived over a wire transport or from an
// in-process harness.
//
// # Concurrency contract
//
// A Session executes one statement at a time (ErrBusy otherwise) from a
// single worker goroutine, like a DBMS connection. Kill, List, and
// Drain may race that worker freely: kill flips the session context and
// takes effect at the executor's next operator boundary, and the Stats
// buffer is mutex-guarded with an exactly-once Emit-vs-Drain contract —
// every completed query's observation appears in exactly one drain,
// and a killed query contributes nothing (exec.ExecuteObserved only
// observes whole completed queries).
package session
