package runner

import (
	"reflect"
	"testing"

	"mb2/internal/catalog"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/modeling"
	"mb2/internal/ou"
	"mb2/internal/plan"
)

// tinyConfig keeps test sweeps fast.
func tinyConfig() Config {
	return Config{
		CPU:         hw.DefaultCPU(),
		Repetitions: 2,
		Warmups:     1,
		MaxRows:     600,
		Seed:        1,
	}
}

func TestRowLadder(t *testing.T) {
	l := rowLadder(10000)
	if l[0] != 8 || l[len(l)-1] != 8192 {
		t.Fatalf("ladder = %v", l)
	}
	if got := rowLadder(4); len(got) != 1 || got[0] != 4 {
		t.Fatalf("tiny ladder = %v", got)
	}
}

func TestMeasureTrimmedMean(t *testing.T) {
	repo := metrics.NewRepository()
	cfg := tinyConfig()
	cfg.Repetitions = 5
	calls := 0
	measure(repo, cfg, func(col *metrics.Collector) {
		calls++
		v := 10.0
		if calls == 3 { // one outlier run (within warmup+reps sequence)
			v = 1e6
		}
		col.Emit(ou.SeqScan, []float64{1}, hw.Metrics{ElapsedUS: v})
	})
	if calls != cfg.Warmups+cfg.Repetitions {
		t.Fatalf("measure ran fn %d times", calls)
	}
	recs := repo.Records(ou.SeqScan)
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Labels.ElapsedUS != 10 {
		t.Fatalf("trimmed mean = %v, want 10", recs[0].Labels.ElapsedUS)
	}
}

func TestRunAllCoversEveryOU(t *testing.T) {
	repo := metrics.NewRepository()
	cfg := tinyConfig()
	rep := RunAll(repo, cfg)
	if rep.Records == 0 || rep.SimulatedUS <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	have := map[ou.Kind]bool{}
	for _, k := range repo.Kinds() {
		have[k] = true
	}
	for k := 0; k < ou.NumKinds; k++ {
		if !have[ou.Kind(k)] {
			t.Errorf("no training data for OU %v", ou.Kind(k))
		}
	}
	// Every record's feature width matches its OU spec.
	for _, k := range repo.Kinds() {
		spec := ou.Get(k)
		for _, r := range repo.Records(k) {
			if len(r.Features) != spec.NumFeatures() {
				t.Fatalf("%v record has %d features, want %d", k, len(r.Features), spec.NumFeatures())
			}
		}
	}
}

func TestRunAllParallelMatchesSerial(t *testing.T) {
	cfg := tinyConfig()
	run := func(jobs int) *metrics.Repository {
		cfg.Jobs = jobs
		repo := metrics.NewRepository()
		RunAll(repo, cfg)
		return repo
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial.Kinds(), parallel.Kinds()) {
		t.Fatalf("kinds diverge: %v vs %v", serial.Kinds(), parallel.Kinds())
	}
	for _, k := range serial.Kinds() {
		s, p := serial.Records(k), parallel.Records(k)
		if len(s) != len(p) {
			t.Fatalf("%v: %d records serial, %d parallel", k, len(s), len(p))
		}
		for i := range s {
			if !reflect.DeepEqual(s[i], p[i]) {
				t.Fatalf("%v record %d diverges:\nserial   %+v\nparallel %+v", k, i, s[i], p[i])
			}
		}
	}
}

func TestRunnersCoverDeclaredOUs(t *testing.T) {
	cfg := tinyConfig()
	for _, r := range AllRunners() {
		repo := metrics.NewRepository()
		r.Run(repo, cfg)
		have := map[ou.Kind]bool{}
		for _, k := range repo.Kinds() {
			have[k] = true
		}
		for _, k := range r.OUs {
			if !have[k] {
				t.Errorf("runner %s declared %v but produced no data", r.Name, k)
			}
		}
	}
}

func trainTinyModels(t *testing.T, repo *metrics.Repository) *modeling.ModelSet {
	t.Helper()
	opts := modeling.DefaultTrainOptions()
	opts.Candidates = []string{"huber"}
	ms, err := modeling.TrainModelSet(repo, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestExecuteIntervalAndInterferenceData(t *testing.T) {
	cfg := tinyConfig()
	db := scratchDB(cfg, "t", 2000, 2, 50)
	templates := []QueryTemplate{
		{Name: "scan", Plan: &plan.SeqScanNode{Table: "t", Rows: plan.Estimates{Rows: 2000}}},
		{Name: "agg", Plan: &plan.AggNode{
			Child:   &plan.SeqScanNode{Table: "t", Rows: plan.Estimates{Rows: 2000}},
			GroupBy: []int{1},
			Aggs:    []plan.AggSpec{{Fn: plan.Count, Arg: plan.Col(0)}},
			Rows:    plan.Estimates{Rows: 50, Distinct: 50},
		}},
	}
	ccfg := DefaultConcurrentConfig()
	ccfg.IntervalUS = 100000

	run, err := ExecuteInterval(db, ccfg, templates, RoundRobinAssignment([]int{0, 1}, 3, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Queries) != 12 || len(run.PerThreadIsolated) != 3 {
		t.Fatalf("run shape: %d queries, %d threads", len(run.Queries), len(run.PerThreadIsolated))
	}
	for _, q := range run.Queries {
		if q.Concurrent.ElapsedUS < q.Isolated.ElapsedUS {
			t.Fatal("concurrent execution cannot be faster than isolated")
		}
	}

	// Train tiny OU models from a quick sweep, then generate samples.
	repo := metrics.NewRepository()
	for _, r := range AllRunners() {
		if r.Name == "seq_scan" || r.Name == "agg" {
			r.Run(repo, cfg)
		}
	}
	ms := trainTinyModels(t, repo)
	tr := modeling.NewTranslator(db, ccfg.Mode)
	samples, err := GenerateInterference(db, ms, tr, templates, ccfg, []int{1, 3}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no interference samples")
	}
	for _, s := range samples {
		if len(s.ActualRatios) != hw.NumLabels {
			t.Fatalf("ratio width %d", len(s.ActualRatios))
		}
		for _, r := range s.ActualRatios {
			if r < 1 {
				t.Fatalf("ratio %v < 1", r)
			}
		}
	}
}

func TestExecuteIntervalExtraThreads(t *testing.T) {
	cfg := tinyConfig()
	db := scratchDB(cfg, "t", 1000, 0, 10)
	templates := []QueryTemplate{
		{Name: "scan", Plan: &plan.SeqScanNode{Table: "t", Rows: plan.Estimates{Rows: 1000}}},
	}
	ccfg := DefaultConcurrentConfig()
	ccfg.IntervalUS = 2000
	assign := RoundRobinAssignment([]int{0}, 2, 3)

	quiet, err := ExecuteInterval(db, ccfg, templates, assign, nil)
	if err != nil {
		t.Fatal(err)
	}
	heavyLoad := hw.Metrics{ElapsedUS: 2000, CPUTimeUS: 2000, Cycles: 4e6, CacheRefs: 2e6, CacheMisses: 4e5}
	extra := []hw.Metrics{heavyLoad, heavyLoad, heavyLoad, heavyLoad,
		heavyLoad, heavyLoad, heavyLoad, heavyLoad, heavyLoad, heavyLoad}
	busy, err := ExecuteInterval(db, ccfg, templates, assign, extra)
	if err != nil {
		t.Fatal(err)
	}
	if busy.Queries[0].Concurrent.ElapsedUS <= quiet.Queries[0].Concurrent.ElapsedUS {
		t.Fatalf("extra load must slow queries: %v vs %v",
			busy.Queries[0].Concurrent.ElapsedUS, quiet.Queries[0].Concurrent.ElapsedUS)
	}
	if len(busy.Ratios) != 12 {
		t.Fatalf("ratios must cover extra threads: %d", len(busy.Ratios))
	}
}

func TestRoundRobinAssignment(t *testing.T) {
	a := RoundRobinAssignment([]int{5, 7}, 2, 3)
	if len(a) != 2 || len(a[0]) != 3 || len(a[1]) != 3 {
		t.Fatalf("assignment = %v", a)
	}
	count := map[int]int{}
	for _, list := range a {
		for _, v := range list {
			count[v]++
		}
	}
	if count[5] != 3 || count[7] != 3 {
		t.Fatalf("balance = %v", count)
	}
}

func TestTemplateSubsets(t *testing.T) {
	s := templateSubsets(8)
	if len(s) != 4 || len(s[0]) != 8 {
		t.Fatalf("subsets = %v", s)
	}
	if len(templateSubsets(1)) != 1 {
		t.Fatal("single template must yield one subset")
	}
}

func TestMeasureWithNoiseStaysRobust(t *testing.T) {
	repo := metrics.NewRepository()
	cfg := tinyConfig()
	cfg.Repetitions = 10
	cfg.NoiseScale = 0.2
	db := scratchDB(cfg, "t", 200, 0, 10)
	measure(repo, cfg, func(col *metrics.Collector) {
		mustExec(ctxFor(db, cfg, col, catalog.Interpret), &plan.SeqScanNode{Table: "t"})
	})
	recs := repo.Records(ou.SeqScan)
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	// Compare to a noiseless reference: trimmed mean should land close.
	ref := metrics.NewRepository()
	cfg.NoiseScale = 0
	measure(ref, cfg, func(col *metrics.Collector) {
		mustExec(ctxFor(db, cfg, col, catalog.Interpret), &plan.SeqScanNode{Table: "t"})
	})
	want := ref.Records(ou.SeqScan)[0].Labels.ElapsedUS
	got := recs[0].Labels.ElapsedUS
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("noisy trimmed mean %v too far from %v", got, want)
	}
}
