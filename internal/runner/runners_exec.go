package runner

import (
	"fmt"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/exec"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

func ctxFor(db *engine.DB, cfg Config, col *metrics.Collector, mode catalog.ExecutionMode) *exec.Ctx {
	return &exec.Ctx{
		DB:            db,
		Tracker:       metrics.NewTracker(col, hw.NewThread(cfg.CPU)),
		Mode:          mode,
		Contenders:    1,
		JHTSleepEvery: cfg.JHTSleepEvery,
	}
}

func mustExec(ctx *exec.Ctx, n plan.Node) *exec.Batch {
	b, err := exec.Execute(ctx, n)
	if err != nil {
		panic(fmt.Sprintf("runner: %v", err))
	}
	return b
}

// seqScanUnits sweeps table size, width, selectivity, and execution mode:
// training data for SEQ_SCAN and the filter side of ARITHMETICS. One unit
// per (rows, extraCols) cell — each owns its scratch table.
func seqScanUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows) {
		for _, extraCols := range []int{0, 2, 4, 7} {
			units = append(units, SweepUnit{
				Name: fmt.Sprintf("seq_scan/rows=%d,cols=%d", rows, extraCols),
				run: func(repo *metrics.Repository, cfg Config) {
					db := scratchDB(cfg, "t", rows, extraCols, rows/4+1)
					for _, mode := range modes {
						// Full scan.
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.SeqScan)
							mustExec(ctxFor(db, cfg, col, mode), &plan.SeqScanNode{Table: "t"})
						})
						// Filtered scans at several selectivities.
						for _, sel := range []float64{0.1, 0.5, 0.9} {
							cut := int64(float64(rows) * sel)
							pred := plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(cut)}
							measure(repo, cfg, func(col *metrics.Collector) {
								col.EnableOnly(ou.SeqScan, ou.Arithmetic)
								mustExec(ctxFor(db, cfg, col, mode), &plan.SeqScanNode{Table: "t", Filter: pred})
							})
						}
					}
				},
			})
		}
	}
	return units
}

// idxScanUnits sweeps point lookups, range scans of varying selectivity,
// and looped lookups (via index joins) that exercise the caching-effect
// feature. One unit per table size — index builds dominate setup cost.
func idxScanUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows) {
		units = append(units, SweepUnit{
			Name: fmt.Sprintf("idx_scan/rows=%d", rows),
			run: func(repo *metrics.Repository, cfg Config) {
				db := scratchDB(cfg, "t", rows, 2, rows/8+1)
				if _, _, err := db.CreateIndex(nil, cfg.CPU, "t_id", "t", []string{"id"}, true, 1); err != nil {
					panic(err)
				}
				if _, _, err := db.CreateIndex(nil, cfg.CPU, "t_grp", "t", []string{"grp"}, false, 1); err != nil {
					panic(err)
				}
				for _, mode := range modes {
					// Point lookup.
					measure(repo, cfg, func(col *metrics.Collector) {
						col.EnableOnly(ou.IdxScan)
						mustExec(ctxFor(db, cfg, col, mode), &plan.IdxScanNode{
							Table: "t", Index: "t_id",
							Eq: []storage.Value{storage.NewInt(int64(rows / 2))},
						})
					})
					// Range scans.
					for _, frac := range []float64{0.01, 0.1, 0.5} {
						span := int64(float64(rows) * frac)
						if span < 1 {
							span = 1
						}
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.IdxScan)
							mustExec(ctxFor(db, cfg, col, mode), &plan.IdxScanNode{
								Table: "t", Index: "t_id",
								Lo: []storage.Value{storage.NewInt(0)},
								Hi: []storage.Value{storage.NewInt(span)},
							})
						})
					}
					// Looped lookups: index join with outer subsets of varying size.
					for _, outer := range []int64{4, 64} {
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.IdxScan)
							mustExec(ctxFor(db, cfg, col, mode), &plan.IndexJoinNode{
								Outer: &plan.SeqScanNode{Table: "t",
									Filter: plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(outer)}},
								Table: "t", Index: "t_grp", OuterKeys: []int{1},
							})
						})
					}
				}
			},
		})
	}
	return units
}

// hashJoinUnits sweeps build size, key cardinality, and the widths of the
// build and probe sides. The sides come from two separately shaped tables
// so the probe's emitted-tuple-width (payload) feature decorrelates from
// the probe input width — self-joins alone would alias the two. One unit
// per (rows, cardFrac, shape) cell: the heaviest sweep, so it splits fine.
func hashJoinUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows) {
		for _, cardFrac := range []float64{0.01, 0.25, 1.0} {
			card := int(float64(rows)*cardFrac) + 1
			for _, shape := range []struct{ buildCols, probeCols int }{
				{2, 2}, {7, 1}, {1, 7},
			} {
				units = append(units, SweepUnit{
					Name: fmt.Sprintf("hash_join/rows=%d,card=%d,shape=%dx%d",
						rows, card, shape.buildCols, shape.probeCols),
					run: func(repo *metrics.Repository, cfg Config) {
						db := scratchDB(cfg, "build_side", rows, shape.buildCols, card)
						addScratchTable(db, cfg, "probe_side", rows/2+1, shape.probeCols, card)
						for _, mode := range modes {
							join := &plan.HashJoinNode{
								Left:      &plan.SeqScanNode{Table: "build_side"},
								Right:     &plan.SeqScanNode{Table: "probe_side"},
								LeftKeys:  []int{1},
								RightKeys: []int{1},
							}
							measure(repo, cfg, func(col *metrics.Collector) {
								col.EnableOnly(ou.HashJoinBuild, ou.HashJoinProbe)
								mustExec(ctxFor(db, cfg, col, mode), join)
							})
						}
					},
				})
			}
		}
	}
	return units
}

// aggUnits sweeps input size and group cardinality for the aggregation
// OUs. One unit per (rows, groups) cell.
func aggUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows) {
		for _, groups := range []int{1, 16, 256, 4096} {
			if groups > rows {
				continue
			}
			units = append(units, SweepUnit{
				Name: fmt.Sprintf("agg/rows=%d,groups=%d", rows, groups),
				run: func(repo *metrics.Repository, cfg Config) {
					db := scratchDB(cfg, "t", rows, 7, groups)
					for _, mode := range modes {
						for _, nAggs := range []int{1, 3, 5} {
							aggs := []plan.AggSpec{{Fn: plan.Count, Arg: plan.Col(0)}}
							if nAggs >= 3 {
								aggs = append(aggs,
									plan.AggSpec{Fn: plan.Sum, Arg: plan.Col(3)},
									plan.AggSpec{Fn: plan.Max, Arg: plan.Col(2)})
							}
							if nAggs >= 5 {
								aggs = append(aggs,
									plan.AggSpec{Fn: plan.Avg, Arg: plan.Col(3)},
									plan.AggSpec{Fn: plan.Sum, Arg: plan.Arith{Op: plan.Mul, L: plan.Col(3), R: plan.Col(3)}})
							}
							measure(repo, cfg, func(col *metrics.Collector) {
								col.EnableOnly(ou.AggBuild, ou.AggProbe)
								mustExec(ctxFor(db, cfg, col, mode), &plan.AggNode{
									Child:   &plan.SeqScanNode{Table: "t"},
									GroupBy: []int{1},
									Aggs:    aggs,
								})
							})
						}
					}
				},
			})
		}
	}
	return units
}

// sortUnits sweeps input size, width, and limits for the sort OUs. One
// unit per (rows, extraCols) cell.
func sortUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows) {
		for _, extraCols := range []int{0, 3, 7} {
			units = append(units, SweepUnit{
				Name: fmt.Sprintf("sort/rows=%d,cols=%d", rows, extraCols),
				run: func(repo *metrics.Repository, cfg Config) {
					db := scratchDB(cfg, "t", rows, extraCols, rows/4+1)
					for _, mode := range modes {
						for _, limit := range []int{0, 10} {
							measure(repo, cfg, func(col *metrics.Collector) {
								col.EnableOnly(ou.SortBuild, ou.SortIter)
								mustExec(ctxFor(db, cfg, col, mode), &plan.SortNode{
									Child: &plan.SeqScanNode{Table: "t"},
									Keys:  []plan.SortKey{{Col: 1}, {Col: 0}},
									Limit: limit,
								})
							})
						}
					}
				},
			})
		}
	}
	return units
}

// outputUnits sweeps result-set size and width for the networking OU. One
// unit per (rows, extraCols) cell.
func outputUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows) {
		for _, extraCols := range []int{0, 4, 7} {
			units = append(units, SweepUnit{
				Name: fmt.Sprintf("output/rows=%d,cols=%d", rows, extraCols),
				run: func(repo *metrics.Repository, cfg Config) {
					db := scratchDB(cfg, "t", rows, extraCols, 16)
					for _, mode := range modes {
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.Output)
							mustExec(ctxFor(db, cfg, col, mode), &plan.OutputNode{
								Child: &plan.SeqScanNode{Table: "t"},
							})
						})
					}
				},
			})
		}
	}
	return units
}

// dmlUnits sweeps write-batch sizes for INSERT/UPDATE/DELETE. Changes are
// rolled back after measurement so every repetition sees the same state
// (the paper reverts DML with transaction rollbacks, Sec 6.2). One unit
// per table size.
func dmlUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows / 4) {
		units = append(units, SweepUnit{
			Name: fmt.Sprintf("dml/rows=%d", rows),
			run: func(repo *metrics.Repository, cfg Config) {
				db := scratchDB(cfg, "t", rows, 2, rows/4+1)
				for _, mode := range modes {
					for _, batch := range []int{1, 8, 64, 512} {
						if batch > rows {
							continue
						}
						tuples := make([]storage.Tuple, batch)
						for i := range tuples {
							tuples[i] = storage.Tuple{
								storage.NewInt(int64(1_000_000 + i)),
								storage.NewInt(int64(i)),
								storage.NewInt(7),
								storage.NewFloat(3.5),
							}
						}
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.Insert)
							ctx := ctxFor(db, cfg, col, mode)
							ctx.Begin()
							mustExec(ctx, &plan.InsertNode{Table: "t", Tuples: tuples})
							if err := ctx.Abort(); err != nil {
								panic(err)
							}
						})
						target := &plan.SeqScanNode{Table: "t",
							Filter: plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(int64(batch))}}
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.Update)
							ctx := ctxFor(db, cfg, col, mode)
							ctx.Begin()
							mustExec(ctx, &plan.UpdateNode{
								Child: target, Table: "t",
								SetCols:  []int{2},
								SetExprs: []plan.Expr{plan.Arith{Op: plan.Add, L: plan.Col(2), R: plan.IntConst(1)}},
							})
							if err := ctx.Abort(); err != nil {
								panic(err)
							}
						})
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.Delete)
							ctx := ctxFor(db, cfg, col, mode)
							ctx.Begin()
							mustExec(ctx, &plan.DeleteNode{Child: target, Table: "t"})
							if err := ctx.Abort(); err != nil {
								panic(err)
							}
						})
					}
				}
			},
		})
	}
	return units
}
