// Package runner implements MB2's data-generation infrastructure (Sec 6):
// one OU-runner per operating unit that sweeps the OU's input-feature space
// with fixed-length and exponential step sizes (Sec 6.2), and concurrent
// runners that execute end-to-end workloads under varying parallelism to
// produce interference-model training data (Sec 6.3).
//
// # Concurrency contract
//
// The offline sweep is parallelized behind Config.Jobs (and
// ConcurrentConfig.Jobs for the concurrent runners) with results
// bit-for-bit identical to a serial run at any worker count:
//
//   - Every OU-runner enumerates its sweep as independent SweepUnits, each
//     owning a private scratch database, hardware-thread contexts, and a
//     noise stream pre-derived from (Config.Seed, unit name) — never from
//     execution order.
//   - RunAll executes units on a bounded worker pool (internal/par); each
//     unit fills a private metrics.Repository and the parts are merged in
//     deterministic unit order, reproducing the serial per-OU record order
//     that downstream shuffles and splits key off.
//   - GenerateInterference applies the same scheme to its (query subset,
//     thread count, rate) scenario cells; cells execute read-only against
//     the shared database and their samples merge in cell order.
//
// Jobs <= 0 selects runtime.GOMAXPROCS(0); 1 is the serial path.
package runner
