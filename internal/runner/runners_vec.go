package runner

import (
	"fmt"

	"mb2/internal/catalog"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/plan"
)

// vecUnits sweeps the vectorized execution mode's OU feature spaces:
// VEC_SCAN and VEC_FILTER over scan chains of varying size, width,
// selectivity, and per-row expression work, and VEC_PROBE over hash-join
// shapes of varying build cardinality. Every unit runs with the Vectorize
// knob; the non-VEC OUs the same executions emit stay collector-disabled,
// so the sweep adds records for the three new kinds only and every
// previously trained model's data — and digest — is untouched. One unit per
// (rows, cols) cell, each owning its scratch database.
func vecUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows) {
		for _, extraCols := range []int{0, 4} {
			units = append(units, SweepUnit{
				Name: fmt.Sprintf("vec/rows=%d,cols=%d", rows, extraCols),
				run: func(repo *metrics.Repository, cfg Config) {
					db := scratchDB(cfg, "vt", rows, extraCols, rows/4+1)
					addScratchTable(db, cfg, "vd", rows/2+1, 1, rows/4+1)

					// Full scan: VEC_SCAN alone.
					measure(repo, cfg, func(col *metrics.Collector) {
						col.EnableOnly(ou.VecScan)
						mustExec(ctxFor(db, cfg, col, catalog.Vectorize),
							&plan.SeqScanNode{Table: "vt"})
					})
					// Filtered scans at several selectivities: VEC_FILTER's
					// input-row axis.
					for _, sel := range []float64{0.1, 0.5, 0.9} {
						cut := int64(float64(rows) * sel)
						pred := plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(cut)}
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.VecScan, ou.VecFilter)
							mustExec(ctxFor(db, cfg, col, catalog.Vectorize),
								&plan.SeqScanNode{Table: "vt", Filter: pred})
						})
					}
					// A filter + projection chain: VEC_FILTER's op-count axis
					// (projection stages bill their expression work to the
					// same kind).
					proj := &plan.ProjectNode{
						Child: &plan.FilterNode{
							Child: &plan.SeqScanNode{Table: "vt"},
							Pred:  plan.Cmp{Op: plan.GE, L: plan.Col(0), R: plan.IntConst(int64(rows / 2))},
						},
						Exprs: []plan.Expr{
							plan.Col(0),
							plan.Arith{Op: plan.Add, L: plan.Col(1), R: plan.IntConst(1)},
						},
					}
					measure(repo, cfg, func(col *metrics.Collector) {
						col.EnableOnly(ou.VecScan, ou.VecFilter)
						mustExec(ctxFor(db, cfg, col, catalog.Vectorize), proj)
					})
					// Hash-join probes: VEC_PROBE over varying build
					// cardinality (grp joins collapse the build side to its
					// distinct groups; id joins keep it unique).
					for _, keys := range [][]int{{0}, {1}} {
						join := &plan.HashJoinNode{
							Left:      &plan.SeqScanNode{Table: "vd"},
							Right:     &plan.SeqScanNode{Table: "vt"},
							LeftKeys:  keys,
							RightKeys: keys,
						}
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.VecProbe)
							mustExec(ctxFor(db, cfg, col, catalog.Vectorize), join)
						})
					}
				},
			})
		}
	}
	return units
}
