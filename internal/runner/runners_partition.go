package runner

import (
	"fmt"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/plan"
)

// partitionedScratchDB builds a fresh database whose tables hash-partition
// on their leading column at the requested count (the PartitionCount knob
// at CreateTable time).
func partitionedScratchDB(cfg Config, name string, rows, extraCols, card, parts int) *engine.DB {
	knobs := catalog.DefaultKnobs()
	knobs.PartitionCount = parts
	db := engine.Open(knobs)
	addScratchTable(db, cfg, name, rows, extraCols, card)
	return db
}

// partitionUnits sweeps the intra-query parallelism feature space:
// partition count x DOP x table shape x execution mode over partitioned
// scratch tables. Parallel scans train PARALLEL_SCAN and EXCHANGE_MERGE;
// partition-wise joins (both sides partitioned on the join key) train
// PARTITION_PROBE. One unit per (rows, parts, cols) cell — each owns its
// partitioned scratch database, preserving the RunAll determinism contract.
func partitionUnits(cfg Config) []SweepUnit {
	capped := func(ladder []int, max int) []int {
		if max <= 0 {
			return ladder
		}
		out := ladder[:0:0]
		for _, v := range ladder {
			if v <= max {
				out = append(out, v)
			}
		}
		if len(out) == 0 {
			out = ladder[:1]
		}
		return out
	}
	partLadder := capped([]int{2, 4, 8}, cfg.MaxPartitions)
	dopLadder := capped([]int{1, 2, 4}, cfg.MaxDOP)
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows) {
		for _, parts := range partLadder {
			for _, extraCols := range []int{0, 4} {
				units = append(units, SweepUnit{
					Name: fmt.Sprintf("partition/rows=%d,parts=%d,cols=%d", rows, parts, extraCols),
					run: func(repo *metrics.Repository, cfg Config) {
						db := partitionedScratchDB(cfg, "pt", rows, extraCols, rows/4+1, parts)
						addScratchTable(db, cfg, "pd", rows/2+1, 1, rows/4+1)
						join := &plan.HashJoinNode{
							Left:      &plan.SeqScanNode{Table: "pd"},
							Right:     &plan.SeqScanNode{Table: "pt"},
							LeftKeys:  []int{0},
							RightKeys: []int{0},
						}
						for _, mode := range modes {
							for _, dop := range dopLadder {
								measure(repo, cfg, func(col *metrics.Collector) {
									col.EnableOnly(ou.ParallelScan, ou.ExchangeMerge)
									ctx := ctxFor(db, cfg, col, mode)
									ctx.DOP = dop
									mustExec(ctx, &plan.SeqScanNode{Table: "pt"})
								})
								measure(repo, cfg, func(col *metrics.Collector) {
									col.EnableOnly(ou.PartitionProbe, ou.ExchangeMerge)
									ctx := ctxFor(db, cfg, col, mode)
									ctx.DOP = dop
									mustExec(ctx, join)
								})
							}
						}
					},
				})
			}
		}
	}
	return units
}
