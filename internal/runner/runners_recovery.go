package runner

import (
	"fmt"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/storage"
	"mb2/internal/wal"
)

// recoverySchema builds the sweep schema: an int64 key plus payloadCols
// int64 payload columns.
func recoverySchema(payloadCols int) catalog.Schema {
	cols := []catalog.Column{{Name: "k", Type: catalog.Int64}}
	for i := 0; i < payloadCols; i++ {
		cols = append(cols, catalog.Column{Name: fmt.Sprintf("c%d", i), Type: catalog.Int64})
	}
	return catalog.NewSchema(cols...)
}

// recoveryDB opens a fresh engine with the sweep schema and `indexes`
// secondary indexes (0, 1, or 2 — key column first, then the first payload
// column).
func recoveryDB(payloadCols, indexes int) *engine.DB {
	db := engine.OpenOnDevices(catalog.DefaultKnobs(), nil, nil)
	if _, err := db.CreateTable("t", recoverySchema(payloadCols)); err != nil {
		panic(err)
	}
	for i, col := range []string{"k", "c0"} {
		if i >= indexes {
			break
		}
		if _, _, err := db.CreateIndex(nil, db.Machine.CPU, "t_"+col, "t",
			[]string{col}, i == 0, 1); err != nil {
			panic(err)
		}
	}
	return db
}

// recoveryLoad commits `rows` single-insert transactions through the logged
// path and flushes, leaving a durable segment image holding all of them.
func recoveryLoad(db *engine.DB, rows, payloadCols int) {
	tbl := db.Table("t")
	for i := 0; i < rows; i++ {
		tx := db.Txns.Begin(nil)
		data := storage.Tuple{storage.NewInt(int64(i))}
		for c := 0; c < payloadCols; c++ {
			data = append(data, storage.NewInt(int64(i*(c+2))))
		}
		row := tbl.Insert(nil, tx.ID, data)
		tx.RecordWrite(tbl, row, data)
		if err := db.WAL.Enqueue(nil, wal.Record{Type: wal.RecordInsert, TxnID: tx.ID,
			TableID: int32(tbl.Meta.ID), Row: int64(row), Payload: data}); err != nil {
			panic(err)
		}
		if _, err := db.CommitLogged(tx, nil); err != nil {
			panic(err)
		}
	}
	db.WAL.Serialize(nil)
	if _, err := db.WAL.Flush(nil); err != nil {
		panic(err)
	}
}

// recoveryUnits sweeps the three recovery OUs — log replay, index rebuild,
// and checkpoint write — over row count and payload width. Every unit
// performs the real work it labels: a replay of a durable segment onto a
// fresh engine, an index rebuild over the recovered heap, a checkpoint of a
// populated engine. Features are the exact quantities the planner knows at
// failover-decision time (pending records/commits/bytes, rows, index count,
// key bytes, tuple width), so training and inference see the same space.
func recoveryUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range []int{16, 128, 1024, 8192} {
		if rows > cfg.MaxRows {
			continue
		}
		for _, payloadCols := range []int{1, 8} {
			rows, payloadCols := rows, payloadCols
			indexes := 1 + payloadCols/8 // 1 narrow-payload, 2 wide-payload
			units = append(units, SweepUnit{
				Name: fmt.Sprintf("recovery/rows=%d,payload=%d", rows, payloadCols),
				run: func(repo *metrics.Repository, cfg Config) {
					// REPLAY: redo the committed segment onto a fresh engine.
					measure(repo, cfg, func(col *metrics.Collector) {
						col.EnableOnly(ou.Replay)
						src := recoveryDB(payloadCols, 0)
						recoveryLoad(src, rows, payloadCols)
						_, body, _, err := wal.ParseSegment(src.WAL.Durable())
						if err != nil {
							panic(err)
						}
						records, _, _ := wal.DeserializePrefix(body)
						dst := recoveryDB(payloadCols, 0)
						tables := map[int32]*storage.Table{}
						t := dst.Table("t")
						tables[int32(t.Meta.ID)] = t
						th := hw.NewThread(cfg.CPU)
						start := th.Counters()
						if _, _, err := wal.ReplayRange(th, records, tables, 0, 0); err != nil {
							panic(err)
						}
						col.Emit(ou.Replay, ou.ReplayFeatures(
							float64(len(records)), float64(wal.NumCommitted(records)), float64(len(body))),
							th.Since(start))
					})
					// INDEX_REBUILD: rebuild secondary structures over the heap.
					measure(repo, cfg, func(col *metrics.Collector) {
						col.EnableOnly(ou.IndexRebuild)
						db := recoveryDB(payloadCols, indexes)
						recoveryLoad(db, rows, payloadCols)
						th := hw.NewThread(cfg.CPU)
						start := th.Counters()
						n, idxRows := db.RebuildIndexes(th)
						col.Emit(ou.IndexRebuild, ou.IndexRebuildFeatures(
							float64(idxRows/max(n, 1)), float64(n), float64(idxRows*8)),
							th.Since(start))
					})
					// CHECKPOINT: snapshot the populated engine to its device.
					measure(repo, cfg, func(col *metrics.Collector) {
						col.EnableOnly(ou.CheckpointWrite)
						db := recoveryDB(payloadCols, 0)
						recoveryLoad(db, rows, payloadCols)
						th := hw.NewThread(cfg.CPU)
						start := th.Counters()
						if _, err := db.Checkpoint(th); err != nil {
							panic(err)
						}
						col.Emit(ou.CheckpointWrite, ou.CheckpointFeatures(
							float64(rows), float64(db.Table("t").Meta.Schema.TupleBytes())),
							th.Since(start))
					})
				},
			})
		}
	}
	return units
}
