// Package runner implements MB2's data-generation infrastructure (Sec 6):
// one OU-runner per operating unit that sweeps the OU's input-feature space
// with fixed-length and exponential step sizes, and concurrent runners that
// execute end-to-end workloads under varying parallelism to produce
// interference-model training data.
package runner

import (
	"math/rand"
	"sync/atomic"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/storage"
)

// Config controls the runners.
type Config struct {
	CPU hw.CPU
	// Repetitions is how many times each query is measured; labels are the
	// 20% trimmed mean across repetitions (Sec 6.2).
	Repetitions int
	// Warmups are unmeasured executions before measurement (Sec 6.2).
	Warmups int
	// MaxRows caps the sweep's exponential row ladder. Output-label
	// normalization makes larger data unnecessary (Sec 4.3).
	MaxRows int
	// Seed drives data generation.
	Seed int64
	// NoiseScale, when positive, adds multiplicative measurement noise to
	// collected labels (exercised by the trimmed-mean ablation).
	NoiseScale float64
	// JHTSleepEvery propagates the simulated join-hash-table software
	// update (Sec 8.5) into the runners' execution contexts.
	JHTSleepEvery int
	// TrimFrac is the trimmed-mean fraction used to reduce repeated
	// measurements (default 0.2 per Sec 6.2; negative selects a plain
	// mean, used by the robust-statistics ablation).
	TrimFrac float64

	// noiseSalt distinguishes the noise seeds of successive measurement
	// series within one runner invocation. It is scoped to the invocation
	// (AllRunners wraps each runner with a fresh counter) rather than the
	// process, so a runner's noise stream is a pure function of cfg.Seed
	// and does not depend on what ran before it.
	noiseSalt *int64
}

// DefaultConfig returns the standard training configuration.
func DefaultConfig() Config {
	return Config{
		CPU:         hw.DefaultCPU(),
		Repetitions: 10,
		Warmups:     5,
		MaxRows:     100_000,
		Seed:        1,
		TrimFrac:    0.2,
	}
}

// rowLadder returns the exponential row-count sweep, capped at max.
func rowLadder(max int) []int {
	ladder := []int{8, 32, 128, 512, 2048, 8192, 32768, 100_000}
	out := ladder[:0:0]
	for _, n := range ladder {
		if n <= max {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}

// modes is the execution-mode knob sweep.
var modes = []catalog.ExecutionMode{catalog.Interpret, catalog.Compile}

// scratchDB builds a fresh database holding one table with the requested
// shape (see addScratchTable).
func scratchDB(cfg Config, name string, rows, extraCols, card int) *engine.DB {
	db := engine.Open(catalog.DefaultKnobs())
	addScratchTable(db, cfg, name, rows, extraCols, card)
	return db
}

// addScratchTable creates and loads one table: column 0 is a unique id,
// column 1 cycles through `card` distinct values, and the remaining
// extraCols alternate int and float payloads.
func addScratchTable(db *engine.DB, cfg Config, name string, rows, extraCols, card int) {
	cols := []catalog.Column{
		{Name: "id", Type: catalog.Int64},
		{Name: "grp", Type: catalog.Int64},
	}
	for i := 0; i < extraCols; i++ {
		if i%2 == 0 {
			cols = append(cols, catalog.Column{Name: "ic" + string(rune('a'+i)), Type: catalog.Int64})
		} else {
			cols = append(cols, catalog.Column{Name: "fc" + string(rune('a'+i)), Type: catalog.Float64})
		}
	}
	if _, err := db.CreateTable(name, catalog.NewSchema(cols...)); err != nil {
		panic(err)
	}
	if card < 1 {
		card = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := make([]storage.Tuple, rows)
	for i := 0; i < rows; i++ {
		t := storage.Tuple{
			storage.NewInt(int64(i)),
			storage.NewInt(int64(rng.Intn(card))),
		}
		for c := 0; c < extraCols; c++ {
			if c%2 == 0 {
				t = append(t, storage.NewInt(rng.Int63n(1000)))
			} else {
				t = append(t, storage.NewFloat(rng.Float64()*1000))
			}
		}
		data[i] = t
	}
	if err := db.BulkLoad(name, data); err != nil {
		panic(err)
	}
}

// measure executes fn Warmups+Repetitions times, each against a fresh
// collector, discards the warmups, and reduces the repeated measurements to
// trimmed-mean labels per recorded OU invocation (aligned by position;
// execution is deterministic). The reduced records are added to repo.
func measure(repo *metrics.Repository, cfg Config, fn func(col *metrics.Collector)) {
	reps := cfg.Repetitions
	if reps < 1 {
		reps = 1
	}
	var salt int64
	if cfg.noiseSalt != nil {
		salt = atomic.AddInt64(cfg.noiseSalt, 1)
	}
	var runs [][]metrics.Record
	for i := 0; i < cfg.Warmups+reps; i++ {
		col := metrics.NewCollector()
		if cfg.NoiseScale > 0 {
			col.SetNoise(cfg.NoiseScale, cfg.Seed+salt*1000003+int64(i))
		}
		fn(col)
		if i >= cfg.Warmups {
			runs = append(runs, col.Drain())
		}
	}
	if len(runs) == 0 {
		return
	}
	n := len(runs[0])
	for _, r := range runs {
		if len(r) < n {
			n = len(r)
		}
	}
	for pos := 0; pos < n; pos++ {
		labels := make([]hw.Metrics, len(runs))
		for ri, r := range runs {
			labels[ri] = r[pos].Labels
		}
		trim := cfg.TrimFrac
		if trim < 0 {
			trim = 0 // plain mean (ablation)
		} else if trim == 0 {
			trim = 0.2 // the paper's default
		}
		repo.Add(metrics.Record{
			Kind:     runs[0][pos].Kind,
			Features: runs[0][pos].Features,
			Labels:   metrics.TrimmedMeanLabels(labels, trim),
		})
	}
}

// RunReport summarizes a data-generation run (the Table 2 accounting).
type RunReport struct {
	Records     int
	SimulatedUS float64 // total simulated DBMS time spent exercising OUs
}

// OURunner is one OU-specific microbenchmark.
type OURunner struct {
	Name string
	OUs  []ou.Kind
	Run  func(repo *metrics.Repository, cfg Config)
}

// withSalt gives the runner invocation its own noise-salt counter so its
// measurement noise is a pure function of cfg.Seed, independent of any
// runners that executed earlier in the process.
func withSalt(run func(*metrics.Repository, Config)) func(*metrics.Repository, Config) {
	return func(repo *metrics.Repository, cfg Config) {
		if cfg.noiseSalt == nil {
			cfg.noiseSalt = new(int64)
		}
		run(repo, cfg)
	}
}

// AllRunners returns every OU-runner, covering all 19 OUs.
func AllRunners() []OURunner {
	return []OURunner{
		{Name: "seq_scan", OUs: []ou.Kind{ou.SeqScan, ou.Arithmetic}, Run: withSalt(runSeqScan)},
		{Name: "idx_scan", OUs: []ou.Kind{ou.IdxScan}, Run: withSalt(runIdxScan)},
		{Name: "hash_join", OUs: []ou.Kind{ou.HashJoinBuild, ou.HashJoinProbe}, Run: withSalt(runHashJoin)},
		{Name: "agg", OUs: []ou.Kind{ou.AggBuild, ou.AggProbe}, Run: withSalt(runAgg)},
		{Name: "sort", OUs: []ou.Kind{ou.SortBuild, ou.SortIter}, Run: withSalt(runSort)},
		{Name: "output", OUs: []ou.Kind{ou.Output}, Run: withSalt(runOutput)},
		{Name: "dml", OUs: []ou.Kind{ou.Insert, ou.Update, ou.Delete}, Run: withSalt(runDML)},
		{Name: "index_build", OUs: []ou.Kind{ou.IndexBuild}, Run: withSalt(runIndexBuild)},
		{Name: "gc", OUs: []ou.Kind{ou.GC}, Run: withSalt(runGC)},
		{Name: "wal", OUs: []ou.Kind{ou.LogSerialize, ou.LogFlush}, Run: withSalt(runWAL)},
		{Name: "txn", OUs: []ou.Kind{ou.TxnBegin, ou.TxnCommit}, Run: withSalt(runTxn)},
	}
}

// RunAll executes every OU-runner into the repository and reports volume.
func RunAll(repo *metrics.Repository, cfg Config) RunReport {
	before := repo.NumRecords()
	for _, r := range AllRunners() {
		r.Run(repo, cfg)
	}
	rep := RunReport{Records: repo.NumRecords() - before}
	for _, k := range repo.Kinds() {
		for _, rec := range repo.Records(k) {
			rep.SimulatedUS += rec.Labels.ElapsedUS
		}
	}
	return rep
}
