package runner

import (
	"hash/fnv"
	"math/rand"
	"sync/atomic"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/par"
	"mb2/internal/storage"
)

// Config controls the runners.
type Config struct {
	CPU hw.CPU
	// Repetitions is how many times each query is measured; labels are the
	// 20% trimmed mean across repetitions (Sec 6.2).
	Repetitions int
	// Warmups are unmeasured executions before measurement (Sec 6.2).
	Warmups int
	// MaxRows caps the sweep's exponential row ladder. Output-label
	// normalization makes larger data unnecessary (Sec 4.3).
	MaxRows int
	// Seed drives data generation.
	Seed int64
	// Jobs bounds the worker pool RunAll spreads sweep units over: <= 0
	// selects runtime.GOMAXPROCS(0), 1 is the serial path. Results are
	// bit-for-bit identical at every setting (see SweepUnit).
	Jobs int
	// NoiseScale, when positive, adds multiplicative measurement noise to
	// collected labels (exercised by the trimmed-mean ablation).
	NoiseScale float64
	// JHTSleepEvery propagates the simulated join-hash-table software
	// update (Sec 8.5) into the runners' execution contexts.
	JHTSleepEvery int
	// TrimFrac is the trimmed-mean fraction used to reduce repeated
	// measurements (default 0.2 per Sec 6.2; negative selects a plain
	// mean, used by the robust-statistics ablation).
	TrimFrac float64
	// MaxPartitions and MaxDOP cap the partition runner's sweep ladders
	// (partition counts {2,4,8}, DOP {1,2,4}). <= 0 keeps the full
	// ladder; lower caps shrink the partition-OU sweep without touching
	// any other unit, so digests of the surviving cells are unchanged.
	MaxPartitions int
	MaxDOP        int

	// noiseBase is the per-unit noise seed base, pre-derived by
	// SweepUnit.Run as Seed ^ fnv64a(unit name). It makes a unit's noise
	// stream a pure function of (Seed, unit) — independent of which worker
	// runs the unit and of everything that ran before it — which is what
	// keeps noisy runs deterministic under -j. Zero falls back to Seed
	// (measure called outside a sweep unit).
	noiseBase int64
	// noiseSalt distinguishes the noise seeds of successive measurement
	// series within one sweep unit. It is scoped to the unit (SweepUnit.Run
	// installs a fresh counter) rather than the process.
	noiseSalt *int64
}

// DefaultConfig returns the standard training configuration.
func DefaultConfig() Config {
	return Config{
		CPU:         hw.DefaultCPU(),
		Repetitions: 10,
		Warmups:     5,
		MaxRows:     100_000,
		Seed:        1,
		TrimFrac:    0.2,
	}
}

// rowLadder returns the exponential row-count sweep, capped at max.
func rowLadder(max int) []int {
	ladder := []int{8, 32, 128, 512, 2048, 8192, 32768, 100_000}
	out := ladder[:0:0]
	for _, n := range ladder {
		if n <= max {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}

// modes is the execution-mode knob sweep.
var modes = []catalog.ExecutionMode{catalog.Interpret, catalog.Compile}

// scratchDB builds a fresh database holding one table with the requested
// shape (see addScratchTable).
func scratchDB(cfg Config, name string, rows, extraCols, card int) *engine.DB {
	db := engine.Open(catalog.DefaultKnobs())
	addScratchTable(db, cfg, name, rows, extraCols, card)
	return db
}

// addScratchTable creates and loads one table: column 0 is a unique id,
// column 1 cycles through `card` distinct values, and the remaining
// extraCols alternate int and float payloads.
func addScratchTable(db *engine.DB, cfg Config, name string, rows, extraCols, card int) {
	cols := []catalog.Column{
		{Name: "id", Type: catalog.Int64},
		{Name: "grp", Type: catalog.Int64},
	}
	for i := 0; i < extraCols; i++ {
		if i%2 == 0 {
			cols = append(cols, catalog.Column{Name: "ic" + string(rune('a'+i)), Type: catalog.Int64})
		} else {
			cols = append(cols, catalog.Column{Name: "fc" + string(rune('a'+i)), Type: catalog.Float64})
		}
	}
	if _, err := db.CreateTable(name, catalog.NewSchema(cols...)); err != nil {
		panic(err)
	}
	if card < 1 {
		card = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := make([]storage.Tuple, rows)
	for i := 0; i < rows; i++ {
		t := storage.Tuple{
			storage.NewInt(int64(i)),
			storage.NewInt(int64(rng.Intn(card))),
		}
		for c := 0; c < extraCols; c++ {
			if c%2 == 0 {
				t = append(t, storage.NewInt(rng.Int63n(1000)))
			} else {
				t = append(t, storage.NewFloat(rng.Float64()*1000))
			}
		}
		data[i] = t
	}
	if err := db.BulkLoad(name, data); err != nil {
		panic(err)
	}
}

// measure executes fn Warmups+Repetitions times, each against a fresh
// collector, discards the warmups, and reduces the repeated measurements to
// trimmed-mean labels per recorded OU invocation (aligned by position;
// execution is deterministic). The reduced records are added to repo.
func measure(repo *metrics.Repository, cfg Config, fn func(col *metrics.Collector)) {
	reps := cfg.Repetitions
	if reps < 1 {
		reps = 1
	}
	var salt int64
	if cfg.noiseSalt != nil {
		salt = atomic.AddInt64(cfg.noiseSalt, 1)
	}
	noiseBase := cfg.noiseBase
	if noiseBase == 0 {
		noiseBase = cfg.Seed
	}
	var runs [][]metrics.Record
	for i := 0; i < cfg.Warmups+reps; i++ {
		col := metrics.NewCollector()
		if cfg.NoiseScale > 0 {
			col.SetNoise(cfg.NoiseScale, noiseBase+salt*1000003+int64(i))
		}
		fn(col)
		if i >= cfg.Warmups {
			runs = append(runs, col.Drain())
		}
	}
	if len(runs) == 0 {
		return
	}
	n := len(runs[0])
	for _, r := range runs {
		if len(r) < n {
			n = len(r)
		}
	}
	for pos := 0; pos < n; pos++ {
		labels := make([]hw.Metrics, len(runs))
		for ri, r := range runs {
			labels[ri] = r[pos].Labels
		}
		trim := cfg.TrimFrac
		if trim < 0 {
			trim = 0 // plain mean (ablation)
		} else if trim == 0 {
			trim = 0.2 // the paper's default
		}
		repo.Add(metrics.Record{
			Kind:     runs[0][pos].Kind,
			Features: runs[0][pos].Features,
			Labels:   metrics.TrimmedMeanLabels(labels, trim),
		})
	}
}

// SweepUnit is one independent cell of an OU-runner's parameter sweep: it
// builds its own scratch database, runs its own measurement series, and
// emits records into whatever repository it is given. Units never share
// mutable state, so RunAll can execute them on any worker in any order and
// recover the serial result by merging per-unit repositories in unit order.
type SweepUnit struct {
	// Name identifies the unit (runner name plus its sweep coordinates).
	// It is unique across all runners and seeds the unit's noise stream.
	Name string
	run  func(repo *metrics.Repository, cfg Config)
}

// Run executes the unit. The unit gets a fresh noise-salt counter and a
// noise seed base derived from (cfg.Seed, unit name), so its output is a
// pure function of cfg — independent of scheduling.
func (u SweepUnit) Run(repo *metrics.Repository, cfg Config) {
	cfg.noiseSalt = new(int64)
	cfg.noiseBase = unitSeed(cfg.Seed, u.Name)
	u.run(repo, cfg)
}

// unitSeed derives a unit's seed as seed XOR fnv64a(name): stable across
// processes, independent of unit execution order.
func unitSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// RunReport summarizes a data-generation run (the Table 2 accounting).
type RunReport struct {
	Records     int
	SimulatedUS float64 // total simulated DBMS time spent exercising OUs
}

// OURunner is one OU-specific microbenchmark.
type OURunner struct {
	Name string
	OUs  []ou.Kind
	// Units enumerates the runner's sweep as independent cells, in the
	// order the serial sweep visits them.
	Units func(cfg Config) []SweepUnit
	// Run executes the full sweep serially into repo (all units in order).
	Run func(repo *metrics.Repository, cfg Config)
}

// ouRunner wires a unit generator into an OURunner whose Run executes the
// units serially in enumeration order.
func ouRunner(name string, ous []ou.Kind, units func(cfg Config) []SweepUnit) OURunner {
	return OURunner{
		Name:  name,
		OUs:   ous,
		Units: units,
		Run: func(repo *metrics.Repository, cfg Config) {
			for _, u := range units(cfg) {
				u.Run(repo, cfg)
			}
		},
	}
}

// AllRunners returns every OU-runner, covering the 19 paper OUs plus the
// partitioned-execution and vectorized-execution extension OUs.
func AllRunners() []OURunner {
	return []OURunner{
		ouRunner("seq_scan", []ou.Kind{ou.SeqScan, ou.Arithmetic}, seqScanUnits),
		ouRunner("idx_scan", []ou.Kind{ou.IdxScan}, idxScanUnits),
		ouRunner("hash_join", []ou.Kind{ou.HashJoinBuild, ou.HashJoinProbe}, hashJoinUnits),
		ouRunner("agg", []ou.Kind{ou.AggBuild, ou.AggProbe}, aggUnits),
		ouRunner("sort", []ou.Kind{ou.SortBuild, ou.SortIter}, sortUnits),
		ouRunner("output", []ou.Kind{ou.Output}, outputUnits),
		ouRunner("dml", []ou.Kind{ou.Insert, ou.Update, ou.Delete}, dmlUnits),
		ouRunner("index_build", []ou.Kind{ou.IndexBuild}, indexBuildUnits),
		ouRunner("gc", []ou.Kind{ou.GC}, gcUnits),
		ouRunner("wal", []ou.Kind{ou.LogSerialize, ou.LogFlush}, walUnits),
		ouRunner("txn", []ou.Kind{ou.TxnBegin, ou.TxnCommit}, txnUnits),
		ouRunner("partition", []ou.Kind{ou.ParallelScan, ou.PartitionProbe, ou.ExchangeMerge}, partitionUnits),
		ouRunner("vec", []ou.Kind{ou.VecScan, ou.VecFilter, ou.VecProbe}, vecUnits),
		// Recovery OUs last: their units (and records) append after every
		// existing runner's, so adding them leaves the per-OU record order
		// — and therefore every previously trained model — untouched.
		ouRunner("recovery", []ou.Kind{ou.Replay, ou.IndexRebuild, ou.CheckpointWrite}, recoveryUnits),
	}
}

// RunAll executes every OU-runner into the repository and reports volume.
// Units run on cfg.Jobs workers; each fills a private repository and the
// parts are merged in unit order, so the repository's per-OU record order
// (which downstream shuffles and splits key off) is identical to a serial
// run at any worker count.
func RunAll(repo *metrics.Repository, cfg Config) RunReport {
	before := repo.NumRecords()
	var units []SweepUnit
	for _, r := range AllRunners() {
		units = append(units, r.Units(cfg)...)
	}
	parts := make([]*metrics.Repository, len(units))
	par.Do(cfg.Jobs, len(units), func(i int) {
		part := metrics.NewRepository()
		units[i].Run(part, cfg)
		parts[i] = part
	})
	for _, part := range parts {
		repo.Merge(part)
	}
	rep := RunReport{Records: repo.NumRecords() - before}
	for _, k := range repo.Kinds() {
		for _, rec := range repo.Records(k) {
			rep.SimulatedUS += rec.Labels.ElapsedUS
		}
	}
	return rep
}
