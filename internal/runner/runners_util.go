package runner

import (
	"fmt"

	"mb2/internal/catalog"
	"mb2/internal/exec"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/plan"
	"mb2/internal/storage"
	"mb2/internal/txn"
	"mb2/internal/wal"
)

// indexBuildUnits sweeps table size, key cardinality, and build parallelism
// for the contending INDEX_BUILD OU. Repetitions are reduced because every
// build needs a fresh database. One unit per (rows, cardFrac, threads)
// cell, matching the serial sweep's per-cell index-name sequence.
func indexBuildUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows) {
		if rows < 128 {
			continue
		}
		for _, cardFrac := range []float64{0.01, 0.5, 1.0} {
			card := int(float64(rows)*cardFrac) + 1
			for _, threads := range []int{1, 2, 4, 8, 16} {
				units = append(units, SweepUnit{
					Name: fmt.Sprintf("index_build/rows=%d,card=%d,threads=%d", rows, card, threads),
					run: func(repo *metrics.Repository, cfg Config) {
						buildCfg := cfg
						buildCfg.Repetitions = cfg.Repetitions/3 + 1
						buildCfg.Warmups = 0
						seq := 0
						measure(repo, buildCfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.IndexBuild)
							db := scratchDB(cfg, "t", rows, 1, card)
							name := fmt.Sprintf("ib_%d_%d_%d_%d", rows, card, threads, seq)
							seq++
							if _, _, err := db.CreateIndex(col, cfg.CPU, name, "t", []string{"grp"}, false, threads); err != nil {
								panic(err)
							}
						})
					},
				})
			}
		}
	}
	return units
}

// gcUnits sweeps transaction volume and version churn for the GC batch OU.
// One unit per (rows, updateFrac) cell.
func gcUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, rows := range rowLadder(cfg.MaxRows / 4) {
		for _, updateFrac := range []float64{0.05, 0.25, 1.0} {
			writes := int(float64(rows) * updateFrac)
			if writes < 1 {
				writes = 1
			}
			units = append(units, SweepUnit{
				Name: fmt.Sprintf("gc/rows=%d,writes=%d", rows, writes),
				run: func(repo *metrics.Repository, cfg Config) {
					for _, intervalUS := range []float64{10_000, 50_000} {
						gcCfg := cfg
						gcCfg.Warmups = 0
						gcCfg.Repetitions = cfg.Repetitions/3 + 1
						measure(repo, gcCfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.GC)
							db := scratchDB(cfg, "t", rows, 1, rows/4+1)
							ctx := ctxFor(db, cfg, nil, catalog.Compile)
							ctx.Begin()
							mustExec(ctx, &plan.UpdateNode{
								Child: &plan.SeqScanNode{Table: "t",
									Filter: plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(int64(writes))}},
								Table:    "t",
								SetCols:  []int{2},
								SetExprs: []plan.Expr{plan.IntConst(1)},
							})
							if err := ctx.Commit(); err != nil {
								panic(err)
							}
							gctx := ctxFor(db, cfg, col, catalog.Compile)
							exec.RunGC(gctx, intervalUS)
						})
					}
				},
			})
		}
	}
	return units
}

// walUnits sweeps record volume and payload size for the two WAL batch
// OUs. One unit per (records, payloadCols) cell.
func walUnits(cfg Config) []SweepUnit {
	payload := func(n int) storage.Tuple {
		t := storage.Tuple{}
		for i := 0; i < n; i++ {
			t = append(t, storage.NewInt(int64(i)))
		}
		return t
	}
	var units []SweepUnit
	for _, records := range []int{16, 128, 1024, 8192} {
		if records > cfg.MaxRows {
			continue
		}
		for _, payloadCols := range []int{1, 8, 32} {
			units = append(units, SweepUnit{
				Name: fmt.Sprintf("wal/records=%d,payload=%d", records, payloadCols),
				run: func(repo *metrics.Repository, cfg Config) {
					for _, intervalUS := range []float64{5_000, 20_000} {
						measure(repo, cfg, func(col *metrics.Collector) {
							col.EnableOnly(ou.LogSerialize, ou.LogFlush)
							db := scratchDB(cfg, "t", 1, 0, 1)
							for i := 0; i < records; i++ {
								db.WAL.Enqueue(nil, wal.Record{
									Type: wal.RecordUpdate, TxnID: uint64(i),
									TableID: 1, Row: int64(i), Payload: payload(payloadCols),
								})
							}
							ctx := ctxFor(db, cfg, col, catalog.Compile)
							exec.RunLogSerialize(ctx, intervalUS)
							exec.RunLogFlush(ctx, intervalUS)
						})
					}
				},
			})
		}
	}
	return units
}

// txnUnits sweeps the number of concurrently active transactions for the
// contending begin/commit OUs. One unit per active-transaction count.
func txnUnits(cfg Config) []SweepUnit {
	var units []SweepUnit
	for _, active := range []int{0, 4, 16, 64, 256} {
		units = append(units, SweepUnit{
			Name: fmt.Sprintf("txn/active=%d", active),
			run: func(repo *metrics.Repository, cfg Config) {
				for _, rate := range []float64{10, 100, 1000} {
					measure(repo, cfg, func(col *metrics.Collector) {
						col.EnableOnly(ou.TxnBegin, ou.TxnCommit)
						db := scratchDB(cfg, "t", 4, 0, 1)
						// Pin `active` transactions open to create contention.
						pinned := make([]*txn.Txn, active)
						for i := range pinned {
							pinned[i] = db.Txns.Begin(nil)
						}
						ctx := ctxFor(db, cfg, col, catalog.Compile)
						ctx.TxnRate = rate
						for i := 0; i < 4; i++ {
							ctx.Begin()
							if err := ctx.Commit(); err != nil {
								panic(err)
							}
						}
						for _, p := range pinned {
							if err := p.Abort(nil); err != nil {
								panic(err)
							}
						}
					})
				}
			},
		})
	}
	return units
}
