package runner

import (
	"fmt"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/exec"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/modeling"
	"mb2/internal/par"
	"mb2/internal/plan"
)

// QueryTemplate is one named query plan in an end-to-end workload.
type QueryTemplate struct {
	Name string
	Plan plan.Node
}

// ConcurrentConfig controls the concurrent runners (Sec 6.3).
type ConcurrentConfig struct {
	CPU        hw.CPU
	Machine    hw.Machine
	IntervalUS float64
	Mode       catalog.ExecutionMode
	// Jobs bounds the worker pool GenerateInterference spreads its
	// (subset, threads, rate) scenario cells over: <= 0 selects
	// runtime.GOMAXPROCS(0), 1 is the serial path. Samples are merged in
	// cell order, so results are identical at every setting.
	Jobs int
	// DOP is the per-query scan DOP each worker thread executes with
	// (<= 1 serial). Partitioned tables fan their scans over DOP chains
	// inside every worker, so interference samples cover concurrent
	// partition workers contending for the machine.
	DOP int
}

// DefaultConcurrentConfig returns the standard setup: 1-second intervals on
// the default machine.
func DefaultConcurrentConfig() ConcurrentConfig {
	return ConcurrentConfig{
		CPU:        hw.DefaultCPU(),
		Machine:    hw.DefaultMachine(),
		IntervalUS: 1_000_000,
		Mode:       catalog.Interpret,
	}
}

// QueryRun is one executed query instance within an interval.
type QueryRun struct {
	Template   int // index into the template list
	Thread     int
	Isolated   hw.Metrics // measured in isolation
	Concurrent hw.Metrics // after the machine's contention model
}

// IntervalRun is the observed behavior of one concurrently executed
// interval: the ground truth the interference model learns and is evaluated
// against.
type IntervalRun struct {
	Queries           []QueryRun
	PerThreadIsolated []hw.Metrics
	Ratios            [][]float64 // per thread, per label
}

// ExecuteInterval runs the per-thread query assignment (assignment[t] lists
// template indices thread t executes, in order) and applies the machine's
// contention model across the threads. extra adds pre-measured isolated
// loads on additional threads (e.g. an in-progress parallel index build)
// that contend for the same interval.
func ExecuteInterval(db *engine.DB, cfg ConcurrentConfig, templates []QueryTemplate, assignment [][]int, extra []hw.Metrics) (IntervalRun, error) {
	run := IntervalRun{}
	for tid, list := range assignment {
		th := hw.NewThread(cfg.CPU)
		ctx := &exec.Ctx{
			DB:         db,
			Tracker:    metrics.NewTracker(nil, th),
			Mode:       cfg.Mode,
			Contenders: float64(len(assignment)),
			DOP:        cfg.DOP,
		}
		var total hw.Metrics
		for _, ti := range list {
			before := th.Counters()
			if _, err := exec.Execute(ctx, templates[ti].Plan); err != nil {
				return run, fmt.Errorf("runner: executing %s: %w", templates[ti].Name, err)
			}
			iso := th.Since(before)
			total.Add(iso)
			run.Queries = append(run.Queries, QueryRun{Template: ti, Thread: tid, Isolated: iso})
		}
		run.PerThreadIsolated = append(run.PerThreadIsolated, total)
	}
	run.PerThreadIsolated = append(run.PerThreadIsolated, extra...)

	run.Ratios = cfg.Machine.ContentionRatios(run.PerThreadIsolated, cfg.IntervalUS)
	for i := range run.Queries {
		q := &run.Queries[i]
		q.Concurrent = q.Isolated.ScaleVec(run.Ratios[q.Thread])
	}
	return run, nil
}

// RoundRobinAssignment spreads count executions of the template subset
// across the given number of threads.
func RoundRobinAssignment(subset []int, threads, countPerThread int) [][]int {
	out := make([][]int, threads)
	for t := 0; t < threads; t++ {
		for i := 0; i < countPerThread; i++ {
			out[t] = append(out[t], subset[(t*countPerThread+i)%len(subset)])
		}
	}
	return out
}

// GenerateInterference runs the concurrent runner across query subsets,
// thread counts, and submission rates, converting each interval's observed
// behavior into interference-model training samples: inputs are OU-model
// predictions and their per-thread summaries, targets are the element-wise
// actual/predicted ratios (Sec 5).
func GenerateInterference(db *engine.DB, ms *modeling.ModelSet, tr *modeling.Translator,
	templates []QueryTemplate, cfg ConcurrentConfig, threadCounts []int, rates []int) ([]modeling.InterferenceSample, error) {

	// Predict each template once.
	preds := make([]hw.Metrics, len(templates))
	for i, t := range templates {
		p, _, err := ms.PredictQuery(tr.TranslatePlan(t.Plan))
		if err != nil {
			return nil, fmt.Errorf("runner: predicting %s: %w", t.Name, err)
		}
		preds[i] = p
	}

	// Enumerate the scenario cells in serial sweep order. Each cell
	// executes against the shared database read-only (the templates touch
	// no write OUs) and produces a private sample slice; the ordered merge
	// below makes the result independent of cfg.Jobs.
	type cell struct {
		subset  []int
		threads int
		rate    int
	}
	var cells []cell
	for _, subset := range templateSubsets(len(templates)) {
		for _, threads := range threadCounts {
			for _, rate := range rates {
				cells = append(cells, cell{subset, threads, rate})
			}
		}
	}

	perCell := make([][]modeling.InterferenceSample, len(cells))
	errs := make([]error, len(cells))
	par.Do(cfg.Jobs, len(cells), func(ci int) {
		c := cells[ci]
		assignment := RoundRobinAssignment(c.subset, c.threads, c.rate)
		run, err := ExecuteInterval(db, cfg, templates, assignment, nil)
		if err != nil {
			errs[ci] = err
			return
		}
		// Predicted per-thread totals mirror the assignment.
		predTotals := make([]hw.Metrics, c.threads)
		for t, list := range assignment {
			for _, ti := range list {
				predTotals[t].Add(preds[ti])
			}
		}
		// One sample per template per interval configuration.
		seen := map[int]bool{}
		for _, q := range run.Queries {
			if seen[q.Template] {
				continue
			}
			seen[q.Template] = true
			perCell[ci] = append(perCell[ci], modeling.InterferenceSample{
				TargetPred:   preds[q.Template],
				ThreadTotals: predTotals,
				IntervalUS:   cfg.IntervalUS,
				ActualRatios: q.Concurrent.Ratios(preds[q.Template]),
			})
		}
	})

	var samples []modeling.InterferenceSample
	for ci := range cells {
		if errs[ci] != nil {
			return nil, errs[ci]
		}
		samples = append(samples, perCell[ci]...)
	}
	return samples, nil
}

// templateSubsets enumerates sliding-window subsets of the template list:
// the "subsets of queries in the benchmark" parameter of the concurrent
// runners (Sec 6.3).
func templateSubsets(n int) [][]int {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	subsets := [][]int{all}
	if n >= 2 {
		subsets = append(subsets, all[:n/2], all[n/2:])
	}
	if n >= 4 {
		subsets = append(subsets, all[n/4:3*n/4])
	}
	return subsets
}
