// Package execbench defines the shared microbenchmark scenarios for the
// execution engine's hot pipelines. The same scenarios back the `go test
// -bench` suite (internal/exec/bench_test.go) and the BENCH_exec.json
// writer (cmd/mb2-execbench), so CI smoke runs and recorded numbers always
// measure the same plans over the same data.
package execbench

import (
	"fmt"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/exec"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

// Scenario is one benchmarked pipeline: a cached plan over the standard
// benchmark table.
type Scenario struct {
	Name string
	Plan plan.Node
}

// NewDB loads the benchmark database: one "items" table with n rows
// (id unique, grp = id % 100, val = float(id), name fixed) and a
// primary-key index on id.
func NewDB(n int) (*engine.DB, error) {
	db := engine.Open(catalog.DefaultKnobs())
	schema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "grp", Type: catalog.Int64},
		catalog.Column{Name: "val", Type: catalog.Float64},
		catalog.Column{Name: "name", Type: catalog.Varchar, Width: 12},
	)
	if _, err := db.CreateTable("items", schema); err != nil {
		return nil, err
	}
	rows := make([]storage.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = storage.Tuple{
			storage.NewInt(int64(i)),
			storage.NewInt(int64(i % 100)),
			storage.NewFloat(float64(i)),
			storage.NewString("bench-row"),
		}
	}
	if err := db.BulkLoad("items", rows); err != nil {
		return nil, err
	}
	if _, _, err := db.CreateIndex(nil, hw.DefaultCPU(), "items_id", "items", []string{"id"}, false, 2); err != nil {
		return nil, err
	}
	return db, nil
}

// NewPartitionedDB loads the benchmark database hash-partitioned on id
// with the scan DOP knob raised: the configuration BENCH_partition.json
// sweeps. parts/dop <= 1 keep the serial defaults.
func NewPartitionedDB(n, parts, dop int) (*engine.DB, error) {
	knobs := catalog.DefaultKnobs()
	if parts > 1 {
		knobs.PartitionCount = parts
	}
	if dop > 1 {
		knobs.ScanDOP = dop
	}
	db := engine.Open(knobs)
	schema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "grp", Type: catalog.Int64},
		catalog.Column{Name: "val", Type: catalog.Float64},
		catalog.Column{Name: "name", Type: catalog.Varchar, Width: 12},
	)
	if _, err := db.CreateTable("items", schema); err != nil {
		return nil, err
	}
	rows := make([]storage.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = storage.Tuple{
			storage.NewInt(int64(i)),
			storage.NewInt(int64(i % 100)),
			storage.NewFloat(float64(i)),
			storage.NewString("bench-row"),
		}
	}
	if err := db.BulkLoad("items", rows); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("pairs", catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "w", Type: catalog.Float64},
	)); err != nil {
		return nil, err
	}
	half := make([]storage.Tuple, n/2)
	for i := 0; i < n/2; i++ {
		half[i] = storage.Tuple{storage.NewInt(int64(i)), storage.NewFloat(float64(i) / 2)}
	}
	if err := db.BulkLoad("pairs", half); err != nil {
		return nil, err
	}
	return db, nil
}

// PartitionScenarios returns the partitioned-execution pipelines: the
// exchange-style parallel scan and the partition-wise hash join (bare
// partition-key scans on both sides, the shape exec.partitionWise fans
// out). On an unpartitioned database both degrade to the serial paths, so
// the same scenarios measure every (partitions, dop) cell.
func PartitionScenarios(n int) []Scenario {
	est := func(rows float64) plan.Estimates {
		if rows < 1 {
			rows = 1
		}
		return plan.Estimates{Rows: rows, Distinct: rows}
	}
	return []Scenario{
		{
			Name: "parallel_scan_filter",
			Plan: &plan.SeqScanNode{
				Table:     "items",
				Filter:    plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(int64(n / 2))},
				Rows:      est(float64(n / 2)),
				TableRows: float64(n),
			},
		},
		{
			Name: "partition_wise_join",
			Plan: &plan.HashJoinNode{
				Left:      &plan.SeqScanNode{Table: "items", Rows: est(float64(n)), TableRows: float64(n)},
				Right:     &plan.SeqScanNode{Table: "pairs", Rows: est(float64(n / 2)), TableRows: float64(n / 2)},
				LeftKeys:  []int{0},
				RightKeys: []int{0},
				Rows:      est(float64(n / 2)),
			},
		},
	}
}

// Scenarios returns the benchmarked pipelines for a database of n rows.
func Scenarios(n int) []Scenario {
	half := int64(n / 2)
	build := int64(n / 4)
	outer := int64(n / 10)
	est := func(rows float64) plan.Estimates {
		if rows < 1 {
			rows = 1
		}
		return plan.Estimates{Rows: rows, Distinct: rows}
	}
	return []Scenario{
		{
			// The tentpole target: scan → filter → project in one pass.
			Name: "seq_scan_filter_project",
			Plan: &plan.SeqScanNode{
				Table:     "items",
				Filter:    plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(half)},
				Project:   []int{0, 2},
				Rows:      est(float64(half)),
				TableRows: float64(n),
			},
		},
		{
			// Unique-key hash join: build n/4 rows, stream-probe the full
			// table, emit n/4 joined rows.
			Name: "hash_join",
			Plan: &plan.HashJoinNode{
				Left: &plan.SeqScanNode{
					Table:     "items",
					Filter:    plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(build)},
					Rows:      est(float64(build)),
					TableRows: float64(n),
				},
				Right:     &plan.SeqScanNode{Table: "items", Rows: est(float64(n)), TableRows: float64(n)},
				LeftKeys:  []int{0},
				RightKeys: []int{0},
				Rows:      est(float64(build)),
			},
		},
		{
			// Index nested-loop join: n/10 outer rows, one point probe each.
			Name: "index_join",
			Plan: &plan.IndexJoinNode{
				Outer: &plan.SeqScanNode{
					Table:     "items",
					Filter:    plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(outer)},
					Rows:      est(float64(outer)),
					TableRows: float64(n),
				},
				Table:     "items",
				Index:     "items_id",
				OuterKeys: []int{0},
				Rows:      est(float64(outer)),
			},
		},
	}
}

// Variant is one execution configuration of a scenario.
type Variant struct {
	Name          string
	Mode          catalog.ExecutionMode
	DisableFusion bool
}

// Variants returns the four configurations every scenario runs under: the
// interpreted baseline, both compiled flavors, and the vectorized
// batch-at-a-time mode.
func Variants() []Variant {
	return []Variant{
		{Name: "interpreted", Mode: catalog.Interpret},
		{Name: "compiled_unfused", Mode: catalog.Compile, DisableFusion: true},
		{Name: "compiled_fused", Mode: catalog.Compile},
		{Name: "vectorized", Mode: catalog.Vectorize},
	}
}

// NewCtx builds a worker context for one variant. The tracker has no
// collector: brackets still run (their charges are part of the measured
// work) but records are dropped, so benchmarks measure execution, not
// record accumulation.
func NewCtx(db *engine.DB, v Variant) *exec.Ctx {
	return &exec.Ctx{
		DB:            db,
		Tracker:       metrics.NewTracker(nil, hw.NewThread(hw.DefaultCPU())),
		Mode:          v.Mode,
		Contenders:    1,
		DisableFusion: v.DisableFusion,
	}
}

// NewCtxDOP builds a worker context for one variant with the parallel
// operators' degree of parallelism set — the context the partition sweep
// benchmarks under.
func NewCtxDOP(db *engine.DB, v Variant, dop int) *exec.Ctx {
	ctx := NewCtx(db, v)
	ctx.DOP = dop
	return ctx
}

// CheckPartitioned verifies the partition scenarios return the same
// cardinalities under every variant, and — when cmp is non-nil — the same
// cardinalities as a reference (normally unpartitioned, DOP 1) database:
// the smoke guard the partition sweep runs before timing anything.
func CheckPartitioned(db *engine.DB, n, dop int, cmp map[string]int) (map[string]int, error) {
	counts := map[string]int{}
	for _, sc := range PartitionScenarios(n) {
		for _, v := range Variants() {
			b, err := exec.Execute(NewCtxDOP(db, v, dop), sc.Plan)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sc.Name, v.Name, err)
			}
			if prev, ok := counts[sc.Name]; ok && prev != len(b.Rows) {
				return nil, fmt.Errorf("%s: %s returned %d rows, earlier variant %d",
					sc.Name, v.Name, len(b.Rows), prev)
			}
			counts[sc.Name] = len(b.Rows)
		}
		if cmp != nil && counts[sc.Name] != cmp[sc.Name] {
			return nil, fmt.Errorf("%s: partitioned run returned %d rows, reference %d",
				sc.Name, counts[sc.Name], cmp[sc.Name])
		}
	}
	return counts, nil
}

// Check runs every scenario under every variant once and verifies the
// configurations agree on result cardinality — a cheap smoke guard the
// JSON writer runs before benchmarking.
func Check(db *engine.DB, n int) error {
	for _, sc := range Scenarios(n) {
		counts := map[string]int{}
		for _, v := range Variants() {
			b, err := exec.Execute(NewCtx(db, v), sc.Plan)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", sc.Name, v.Name, err)
			}
			counts[v.Name] = len(b.Rows)
		}
		for _, v := range Variants() {
			if counts[v.Name] != counts["interpreted"] {
				return fmt.Errorf("%s: %s returned %d rows, interpreted %d",
					sc.Name, v.Name, counts[v.Name], counts["interpreted"])
			}
		}
	}
	return nil
}
