// Package execbench defines the shared microbenchmark scenarios for the
// execution engine's hot pipelines. The same scenarios back the `go test
// -bench` suite (internal/exec/bench_test.go) and the BENCH_exec.json
// writer (cmd/mb2-execbench), so CI smoke runs and recorded numbers always
// measure the same plans over the same data.
package execbench

import (
	"fmt"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/exec"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

// Scenario is one benchmarked pipeline: a cached plan over the standard
// benchmark table.
type Scenario struct {
	Name string
	Plan plan.Node
}

// NewDB loads the benchmark database: one "items" table with n rows
// (id unique, grp = id % 100, val = float(id), name fixed) and a
// primary-key index on id.
func NewDB(n int) (*engine.DB, error) {
	db := engine.Open(catalog.DefaultKnobs())
	schema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "grp", Type: catalog.Int64},
		catalog.Column{Name: "val", Type: catalog.Float64},
		catalog.Column{Name: "name", Type: catalog.Varchar, Width: 12},
	)
	if _, err := db.CreateTable("items", schema); err != nil {
		return nil, err
	}
	rows := make([]storage.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = storage.Tuple{
			storage.NewInt(int64(i)),
			storage.NewInt(int64(i % 100)),
			storage.NewFloat(float64(i)),
			storage.NewString("bench-row"),
		}
	}
	if err := db.BulkLoad("items", rows); err != nil {
		return nil, err
	}
	if _, _, err := db.CreateIndex(nil, hw.DefaultCPU(), "items_id", "items", []string{"id"}, false, 2); err != nil {
		return nil, err
	}
	return db, nil
}

// Scenarios returns the benchmarked pipelines for a database of n rows.
func Scenarios(n int) []Scenario {
	half := int64(n / 2)
	build := int64(n / 4)
	outer := int64(n / 10)
	est := func(rows float64) plan.Estimates {
		if rows < 1 {
			rows = 1
		}
		return plan.Estimates{Rows: rows, Distinct: rows}
	}
	return []Scenario{
		{
			// The tentpole target: scan → filter → project in one pass.
			Name: "seq_scan_filter_project",
			Plan: &plan.SeqScanNode{
				Table:     "items",
				Filter:    plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(half)},
				Project:   []int{0, 2},
				Rows:      est(float64(half)),
				TableRows: float64(n),
			},
		},
		{
			// Unique-key hash join: build n/4 rows, stream-probe the full
			// table, emit n/4 joined rows.
			Name: "hash_join",
			Plan: &plan.HashJoinNode{
				Left: &plan.SeqScanNode{
					Table:     "items",
					Filter:    plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(build)},
					Rows:      est(float64(build)),
					TableRows: float64(n),
				},
				Right:     &plan.SeqScanNode{Table: "items", Rows: est(float64(n)), TableRows: float64(n)},
				LeftKeys:  []int{0},
				RightKeys: []int{0},
				Rows:      est(float64(build)),
			},
		},
		{
			// Index nested-loop join: n/10 outer rows, one point probe each.
			Name: "index_join",
			Plan: &plan.IndexJoinNode{
				Outer: &plan.SeqScanNode{
					Table:     "items",
					Filter:    plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(outer)},
					Rows:      est(float64(outer)),
					TableRows: float64(n),
				},
				Table:     "items",
				Index:     "items_id",
				OuterKeys: []int{0},
				Rows:      est(float64(outer)),
			},
		},
	}
}

// Variant is one execution configuration of a scenario.
type Variant struct {
	Name          string
	Mode          catalog.ExecutionMode
	DisableFusion bool
}

// Variants returns the three configurations every scenario runs under.
func Variants() []Variant {
	return []Variant{
		{Name: "interpreted", Mode: catalog.Interpret},
		{Name: "compiled_unfused", Mode: catalog.Compile, DisableFusion: true},
		{Name: "compiled_fused", Mode: catalog.Compile},
	}
}

// NewCtx builds a worker context for one variant. The tracker has no
// collector: brackets still run (their charges are part of the measured
// work) but records are dropped, so benchmarks measure execution, not
// record accumulation.
func NewCtx(db *engine.DB, v Variant) *exec.Ctx {
	return &exec.Ctx{
		DB:            db,
		Tracker:       metrics.NewTracker(nil, hw.NewThread(hw.DefaultCPU())),
		Mode:          v.Mode,
		Contenders:    1,
		DisableFusion: v.DisableFusion,
	}
}

// Check runs every scenario under every variant once and verifies the
// configurations agree on result cardinality — a cheap smoke guard the
// JSON writer runs before benchmarking.
func Check(db *engine.DB, n int) error {
	for _, sc := range Scenarios(n) {
		counts := map[string]int{}
		for _, v := range Variants() {
			b, err := exec.Execute(NewCtx(db, v), sc.Plan)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", sc.Name, v.Name, err)
			}
			counts[v.Name] = len(b.Rows)
		}
		for _, v := range Variants() {
			if counts[v.Name] != counts["interpreted"] {
				return fmt.Errorf("%s: %s returned %d rows, interpreted %d",
					sc.Name, v.Name, counts[v.Name], counts["interpreted"])
			}
		}
	}
	return nil
}
