package exec

import (
	"mb2/internal/hw"
	"mb2/internal/index"
	"mb2/internal/ou"
	"mb2/internal/par"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

// Partitioned intra-query parallelism: exchange-style parallel scans and
// partition-wise hash joins. Work fans out over min(DOP, partitions) worker
// chains; partition p always runs on chain p % chains, each chain owns a
// fresh hardware thread, and per-partition OU records are emitted after the
// barrier in partition order — so the record stream, the merged result
// order, and every charge are a pure function of (data, partition count,
// DOP), independent of goroutine scheduling or the process's -j setting.
//
// Elapsed-time accounting follows engine.CreateIndex's concurrent-build
// pattern: the session thread absorbs only the critical-path chain (the one
// with the largest derived elapsed time), so a query-level bracket around
// the operator sees the slowest chain's wall clock, not the sum of all
// chains. The exchange merge itself runs on the session thread and is
// recorded as the EXCHANGE_MERGE OU.

// partChains returns the number of worker chains for a partitioned operator.
func partChains(dop, parts int) int {
	if dop < 1 {
		dop = 1
	}
	if dop > parts {
		dop = parts
	}
	return dop
}

// computeOn charges operator logic to a worker thread, scaled by the
// execution mode (the worker-thread analogue of Ctx.compute).
func (c *Ctx) computeOn(th *hw.Thread, n float64) {
	if !c.compiled() {
		n *= interpretFactor
	}
	th.Compute(n)
}

// absorbCritical folds the critical-path chain's counters into the session
// thread: the chain with the largest derived elapsed time, ties broken by
// the lowest chain index so the choice is deterministic.
func absorbCritical(ctx *Ctx, chains []*hw.Thread) {
	best, bestElapsed := -1, -1.0
	for i, th := range chains {
		e := th.CPU().Derive(th.Counters()).ElapsedUS
		if e > bestElapsed {
			best, bestElapsed = i, e
		}
	}
	if best >= 0 {
		ctx.Thread().Absorb(chains[best].Counters())
	}
}

// emitPartitionRecords hands the per-partition records collected by worker
// chains to the session collector, in partition order.
func emitPartitionRecords(ctx *Ctx, kind ou.Kind, feats [][]float64, labels []hw.Metrics) {
	col := ctx.Tracker.Collector()
	if col == nil {
		return
	}
	for p := range feats {
		col.Emit(kind, feats[p], labels[p])
	}
}

// tryParallelScan runs a sequential scan over a partitioned table as a
// parallel partition scan. It returns (nil, false) when the node does not
// qualify (unpartitioned table, or a missing table left for execSeqScan's
// error path).
func tryParallelScan(ctx *Ctx, n *plan.SeqScanNode) (*Batch, bool) {
	tbl := ctx.DB.Table(n.Table)
	if tbl == nil {
		return nil, false
	}
	parts := tbl.PartitionCount()
	if parts <= 1 {
		return nil, false
	}
	id, ts := ctx.snapshot()
	dop := partChains(ctx.DOP, parts)
	width := float64(tbl.Meta.Schema.TupleBytes())
	cols := float64(tbl.Meta.Schema.NumColumns())
	cpu := ctx.Thread().CPU()

	chains := make([]*hw.Thread, dop)
	partRows := make([][]storage.Tuple, parts)
	partIDs := make([][]storage.RowID, parts)
	feats := make([][]float64, parts)
	labels := make([]hw.Metrics, parts)

	par.Do(dop, dop, func(c int) {
		th := hw.NewThread(cpu)
		chains[c] = th
		for p := c; p < parts; p += dop {
			th.Compute(300) // per-partition tracker bracket
			start := th.Counters()
			var rows []storage.Tuple
			var rowIDs []storage.RowID
			tbl.ScanPartition(th, p, id, ts, func(r storage.RowID, t storage.Tuple) bool {
				rows = append(rows, t)
				rowIDs = append(rowIDs, r)
				return true
			})
			scanned := float64(len(rows))
			ctx.computeOn(th, scanned*6)
			if n.Filter == nil && n.Project != nil {
				rows = project(rows, n.Project)
				ctx.computeOn(th, scanned*float64(len(n.Project))*2)
			}
			labels[p] = th.Since(start)
			th.Compute(300)
			feats[p] = ou.ParallelScanFeatures(scanned, cols, width,
				float64(parts), float64(dop), ctx.compiled())
			partRows[p] = rows
			partIDs[p] = rowIDs
		}
	})

	absorbCritical(ctx, chains)
	emitPartitionRecords(ctx, ou.ParallelScan, feats, labels)
	if ctx.fused() {
		ctx.FusedPipelines += parts // each partition ran one fused scan chain
	}

	// Exchange merge: concatenate the per-partition streams in partition
	// order on the session thread.
	start := ctx.Tracker.Start()
	total := 0
	for _, rows := range partRows {
		total += len(rows)
	}
	rows := make([]storage.Tuple, 0, total)
	rowIDs := make([]storage.RowID, 0, total)
	for p := range partRows {
		rows = append(rows, partRows[p]...)
		rowIDs = append(rowIDs, partIDs[p]...)
	}
	ctx.Thread().SeqWrite(float64(total), width)
	ctx.compute(float64(total) * 2)
	mergeFeats := ou.ExchangeMergeFeatures(float64(total), width,
		float64(parts), float64(dop), ctx.compiled())
	ctx.Tracker.Stop(ou.ExchangeMerge, mergeFeats, start)

	b := &Batch{Rows: rows, RowIDs: rowIDs}
	if n.Filter != nil {
		b = applyFilter(ctx, b, n.Filter)
		if n.Project != nil {
			b.Rows = project(b.Rows, n.Project)
			b.RowIDs = nil
		}
	}
	if n.Project != nil {
		b.RowIDs = nil
	}
	return b, true
}

// partitionWise reports whether a hash join qualifies for the
// partition-wise path: both inputs are bare scans of tables hash-partitioned
// the same way, joined exactly on their partition keys, so equal keys are
// guaranteed to be co-located in equal partition numbers.
func partitionWise(ctx *Ctx, n *plan.HashJoinNode) (left, right *storage.Table, parts int, ok bool) {
	ls, lok := n.Left.(*plan.SeqScanNode)
	rs, rok := n.Right.(*plan.SeqScanNode)
	if !lok || !rok || ls.Filter != nil || rs.Filter != nil || ls.Project != nil || rs.Project != nil {
		return nil, nil, 0, false
	}
	left, right = ctx.DB.Table(ls.Table), ctx.DB.Table(rs.Table)
	if left == nil || right == nil {
		return nil, nil, 0, false
	}
	parts = left.PartitionCount()
	if parts <= 1 || right.PartitionCount() != parts {
		return nil, nil, 0, false
	}
	if !equalCols(n.LeftKeys, left.PartitionKeyCols()) || !equalCols(n.RightKeys, right.PartitionKeyCols()) {
		return nil, nil, 0, false
	}
	return left, right, parts, true
}

func equalCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tryPartitionJoin runs a qualifying hash join partition-wise: every
// partition builds a private hash table over its stripe of the build side
// and probes it with the co-located stripe of the probe side, one
// PARTITION_PROBE OU invocation per partition (build plus probe of that
// partition), fanned over the worker chains.
func tryPartitionJoin(ctx *Ctx, n *plan.HashJoinNode) (*Batch, bool) {
	left, right, parts, ok := partitionWise(ctx, n)
	if !ok {
		return nil, false
	}
	id, ts := ctx.snapshot()
	dop := partChains(ctx.DOP, parts)
	cpu := ctx.Thread().CPU()
	leftW := float64(left.Meta.Schema.TupleBytes())
	rightW := float64(right.Meta.Schema.TupleBytes())
	leftCols := float64(left.Meta.Schema.NumColumns())
	rightCols := float64(right.Meta.Schema.NumColumns())
	keyBytes := 8.0 * float64(len(n.LeftKeys))
	entryBytes := keyBytes + 8 + 16

	chains := make([]*hw.Thread, dop)
	partOut := make([][]storage.Tuple, parts)
	feats := make([][]float64, parts)
	labels := make([]hw.Metrics, parts)

	par.Do(dop, dop, func(c int) {
		th := hw.NewThread(cpu)
		chains[c] = th
		var keyBuf []byte
		for p := c; p < parts; p += dop {
			th.Compute(300)
			start := th.Counters()

			// Build over this partition's stripe of the build side.
			var buildRows []storage.Tuple
			left.ScanPartition(th, p, id, ts, func(_ storage.RowID, t storage.Tuple) bool {
				buildRows = append(buildRows, t)
				return true
			})
			htBytes := float64(len(buildRows)) * entryBytes
			th.Alloc(htBytes)
			ht := make(map[string]*[]int32, len(buildRows))
			for i, r := range buildRows {
				keyBuf = index.AppendKeyFromTuple(keyBuf[:0], r, n.LeftKeys)
				if b, ok := ht[string(keyBuf)]; ok {
					*b = append(*b, int32(i))
				} else {
					bucket := make([]int32, 1, 4)
					bucket[0] = int32(i)
					ht[string(keyBuf)] = &bucket
				}
				ctx.computeOn(th, 10)
				th.RandWrite(1, htBytes)
			}

			// Probe with the co-located stripe of the probe side.
			var out []storage.Tuple
			probed := 0.0
			right.ScanPartition(th, p, id, ts, func(_ storage.RowID, r storage.Tuple) bool {
				probed++
				keyBuf = index.AppendKeyFromTuple(keyBuf[:0], r, n.RightKeys)
				ctx.computeOn(th, 10)
				th.RandRead(1, htBytes, 1)
				if b, ok := ht[string(keyBuf)]; ok {
					for _, li := range *b {
						joined := make(storage.Tuple, 0, len(buildRows[li])+len(r))
						joined = append(joined, buildRows[li]...)
						joined = append(joined, r...)
						out = append(out, joined)
					}
				}
				return true
			})
			outRows := float64(len(out))
			th.SeqWrite(outRows, leftW+rightW)
			th.Free(htBytes)

			labels[p] = th.Since(start)
			th.Compute(300)
			// One invocation covers the whole partition pair: the feature's
			// tuple count is the total work volume (build + probe + emitted
			// matches), its cardinality the partition's distinct build keys.
			feats[p] = ou.PartitionProbeFeatures(
				float64(len(buildRows))+probed+outRows,
				leftCols+rightCols, leftW+rightW,
				float64(len(ht)), entryBytes,
				float64(dop), ctx.compiled())
			partOut[p] = out
		}
	})

	absorbCritical(ctx, chains)
	emitPartitionRecords(ctx, ou.PartitionProbe, feats, labels)
	if ctx.fused() {
		ctx.FusedPipelines += parts // each partition ran one fused build+probe
	}

	start := ctx.Tracker.Start()
	total := 0
	for _, rows := range partOut {
		total += len(rows)
	}
	out := make([]storage.Tuple, 0, total)
	for p := range partOut {
		out = append(out, partOut[p]...)
	}
	ctx.Thread().SeqWrite(float64(total), leftW+rightW)
	ctx.compute(float64(total) * 2)
	mergeFeats := ou.ExchangeMergeFeatures(float64(total), leftW+rightW,
		float64(parts), float64(dop), ctx.compiled())
	ctx.Tracker.Stop(ou.ExchangeMerge, mergeFeats, start)

	return &Batch{Rows: out}, true
}
