package exec

import (
	"sync"

	"mb2/internal/storage"
)

// Hot-path scratch memory discipline. Fused pipelines draw three kinds of
// buffers:
//
//   - pooled scratch (scan-row buffers, row-ID buffers, width buffers):
//     returned to a sync.Pool before Execute returns; never escapes.
//   - per-Ctx scratch (join key buffers): a Ctx is single-worker by
//     contract, so its key buffer is reused probe-to-probe with no
//     synchronization.
//   - arena-backed output tuples: projected/joined tuples are carved out of
//     chunked []storage.Value blocks owned by the returned Batch. The
//     caller owns the Batch and everything it references; arena chunks are
//     NOT pooled, because results legitimately outlive the query.
//
// See DESIGN.md "Execution pipelines" for the full retention contract.

const (
	scanBatchSize  = 256
	arenaChunkVals = 4096
)

// Pools hold pointers to slices so Get/Put stay allocation-free.
var scanBufPool = sync.Pool{
	New: func() any { b := make([]storage.ScanRow, 0, scanBatchSize); return &b },
}

var rowIDBufPool = sync.Pool{
	New: func() any { b := make([]storage.RowID, 0, 1024); return &b },
}

var intBufPool = sync.Pool{
	New: func() any { b := make([]int, 0, 1024); return &b },
}

func getScanBuf() *[]storage.ScanRow { return scanBufPool.Get().(*[]storage.ScanRow) }

func putScanBuf(b *[]storage.ScanRow) {
	*b = (*b)[:0]
	scanBufPool.Put(b)
}

func getRowIDBuf() *[]storage.RowID { return rowIDBufPool.Get().(*[]storage.RowID) }

func putRowIDBuf(b *[]storage.RowID) {
	*b = (*b)[:0]
	rowIDBufPool.Put(b)
}

func getIntBuf() *[]int { return intBufPool.Get().(*[]int) }

func putIntBuf(b *[]int) {
	*b = (*b)[:0]
	intBufPool.Put(b)
}

// valueArena hands out tuple backing storage in large chunks so building k
// output tuples costs ~k*width/arenaChunkVals allocations instead of k.
// Tuples are carved with a full slice expression, so appending to one can
// never bleed into its neighbor. The arena never reclaims: handed-out
// memory belongs to whoever holds the tuple, and the in-progress chunk is
// safely reusable across queries on the same Ctx because each region is
// handed out exactly once.
type valueArena struct {
	buf []storage.Value
}

// alloc returns a zeroed tuple of n values backed by the arena.
func (a *valueArena) alloc(n int) storage.Tuple {
	if n > len(a.buf) {
		size := arenaChunkVals
		if n > size {
			size = n
		}
		a.buf = make([]storage.Value, size)
	}
	t := storage.Tuple(a.buf[:n:n])
	a.buf = a.buf[n:]
	return t
}

// projectCols builds the column projection of r in arena storage.
func (a *valueArena) projectCols(r storage.Tuple, cols []int) storage.Tuple {
	t := a.alloc(len(cols))
	for i, c := range cols {
		t[i] = r[c]
	}
	return t
}

// join concatenates two tuples in arena storage.
func (a *valueArena) join(l, r storage.Tuple) storage.Tuple {
	t := a.alloc(len(l) + len(r))
	copy(t, l)
	copy(t[len(l):], r)
	return t
}
