package exec

import (
	"fmt"
	"math"
	"sync"

	"mb2/internal/exec/vec"
	"mb2/internal/index"
	"mb2/internal/ou"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

// Vectorized batch execution: the third execution mode (catalog.Vectorize).
//
// A vectorizable scan chain — a fusable scan pipeline rooted at an
// unpartitioned sequential scan — runs batch-at-a-time: up to vec.BatchRows
// tuples load into a column-major vec.Batch, the chain's filter and
// projection stages run as selection-vector kernels, and only the surviving
// lanes materialize. Hash-join probes stream the right side through the
// same batched scan into the Ctx-reused joinTable. Everything outside the
// vectorizable shapes (index scans, aggregates, sorts, DML, output) falls
// back to the operator-at-a-time interpreter path, paying interpreter
// charges — which is exactly what the mode's OU decomposition tells the
// planner, since only VEC_* records carry vectorized cost profiles.
//
// The OU bracket discipline is the fused path's: all real work happens
// inside the VEC_SCAN source bracket, and per-stage VEC_FILTER brackets
// replay their charges afterwards from counts collected during the pass.
// Unlike the fused path, the vec OU stream is NOT record-equivalent to the
// interpreted stream — VEC_SCAN/VEC_FILTER/VEC_PROBE are new OU kinds with
// their own models — but query RESULTS are bit-identical to interpreted
// execution (equivalence_test.go pins this across the template matrix).

// Per-row/per-op kernel cost constants. Compare: interpreted scans pay
// 6*interpretFactor = 16.8 per row and compiled fused scans pay 6; the
// vectorized kernel pays vecScanCostPerRow plus a fixed per-batch overhead,
// so it wins on large inputs and loses on tiny ones — a trade-off the
// VEC_* models learn from the batch_rows feature rather than having it
// hardcoded in the planner.
const (
	vecScanCostPerRow  = 2.0
	vecFilterCostPerOp = 0.6
	vecProbeCostPerRow = 4.0
	vecBatchOverhead   = 32.0
)

// vecBatches is the modeled batch count for n rows: the per-batch overhead
// multiplier. It is a formula over the row count (not the observed chunk
// count) so charges stay a pure function of the features.
func vecBatches(rows float64) float64 {
	if rows <= 0 {
		return 1
	}
	return math.Ceil(rows / vec.BatchRows)
}

// vecScanBufPool holds scan-row buffers sized to the vectorized batch
// (scanBufPool's buffers are sized for the fused path's smaller chunks).
var vecScanBufPool = sync.Pool{
	New: func() any { b := make([]storage.ScanRow, 0, vec.BatchRows); return &b },
}

// vecScanOf reports whether the tree rooted at node is a vectorizable scan
// chain, returning its pipeline. The translator's vec qualification in
// internal/modeling mirrors this exactly; partitioned tables are excluded
// because partition routing takes precedence in every mode.
func vecScanOf(ctx *Ctx, node plan.Node) *plan.ScanPipeline {
	p := plan.FuseScan(node)
	if p == nil {
		return nil
	}
	src, ok := p.Source.(*plan.SeqScanNode)
	if !ok {
		return nil
	}
	tbl := ctx.DB.Table(src.Table)
	if tbl == nil || tbl.PartitionCount() > 1 {
		return nil
	}
	return p
}

// vecStage is the per-stage bookkeeping of one vectorized pass: exactly one
// of pred/exprs is set (the source's own filter runs as the first stage).
// Widths sample one live lane per chunk — enough for the replayed SeqRead
// charge, with no per-row measurement on the hot path.
type vecStage struct {
	pred   plan.Expr
	exprs  []plan.Expr
	inRows int
	chunks int
	wSum   int
}

func (st *vecStage) opsPerRow() float64 {
	if st.pred != nil {
		return st.pred.Ops()
	}
	ops := 0.0
	for _, e := range st.exprs {
		ops += e.Ops()
	}
	return ops
}

// note records a chunk of k live lanes entering the stage.
func (st *vecStage) note(b *vec.Batch, k int) {
	st.inRows += k
	st.chunks++
	st.wSum += b.LaneBytes(b.Sel()[0])
}

// runVecScan drives one vectorized pass over the pipeline's unpartitioned
// sequential-scan source, feeding every surviving row to sink, then emits
// the VEC_SCAN and per-stage VEC_FILTER brackets. When the chain has no
// projection, emitted tuples are the storage layer's own (bit-identical to
// the interpreted path, zero copies); otherwise survivors materialize from
// the batch into arena storage.
func runVecScan(ctx *Ctx, p *plan.ScanPipeline, sink func(storage.RowID, storage.Tuple)) error {
	src, ok := p.Source.(*plan.SeqScanNode)
	if !ok {
		return fmt.Errorf("exec: vectorized pipeline source must be a seq scan, got %T", p.Source)
	}
	tbl := ctx.DB.Table(src.Table)
	if tbl == nil {
		return fmt.Errorf("exec: table %q does not exist", src.Table)
	}
	id, ts := ctx.snapshot()

	// Stage list in application order: the source's own filter first, then
	// the wrapper stages bottom-up. The source's own column projection runs
	// between the two as a free columnar view change (no stage, no OU).
	stages := make([]vecStage, 0, len(p.Stages)+1)
	srcFilter := -1
	if src.Filter != nil {
		srcFilter = 0
		stages = append(stages, vecStage{pred: src.Filter})
	}
	for _, st := range p.Stages {
		stages = append(stages, vecStage{pred: st.Pred, exprs: st.Exprs})
	}
	keepRows := p.HasRowIDs()

	b := vec.GetBatch()
	buf := vecScanBufPool.Get().(*[]storage.ScanRow)

	start := ctx.Tracker.Start()
	scanned := 0
	tbl.ScanBatch(ctx.Thread(), id, ts, *buf, func(rows []storage.ScanRow) bool {
		scanned += len(rows)
		ctx.VecBatches++
		b.Load(rows)
		next := 0
		if srcFilter == 0 {
			stages[0].note(b, b.Live())
			b.Filter(stages[0].pred)
			next = 1
		}
		if src.Project != nil && b.Live() > 0 {
			b.ProjectCols(src.Project)
		}
		for i := next; i < len(stages); i++ {
			if b.Live() == 0 {
				break
			}
			st := &stages[i]
			st.note(b, b.Live())
			if st.pred != nil {
				b.Filter(st.pred)
			} else {
				b.ProjectExprs(st.exprs)
			}
		}
		if keepRows {
			// No projection anywhere in the chain: lanes still map to the
			// loaded chunk, so survivors are the storage rows themselves.
			for _, lane := range b.Sel() {
				sink(rows[lane].Row, rows[lane].Data)
			}
		} else {
			ncols := b.NumCols()
			for _, lane := range b.Sel() {
				t := ctx.arena.alloc(ncols)
				for c := 0; c < ncols; c++ {
					t[c] = b.Value(c, lane)
				}
				sink(0, t)
			}
		}
		return true
	})
	vecScanBufPool.Put(buf)
	vec.PutBatch(b)

	sc := float64(scanned)
	ctx.vecCompute(sc*vecScanCostPerRow + vecBatches(sc)*vecBatchOverhead)
	width := float64(tbl.Meta.Schema.TupleBytes())
	cols := float64(tbl.Meta.Schema.NumColumns())
	feats := ou.VecScanFeatures(sc, cols, width, vec.BatchRows)
	ctx.Tracker.Stop(ou.VecScan, feats, start)

	// Per-stage bracket replay, in application order.
	for i := range stages {
		st := &stages[i]
		start := ctx.Tracker.Start()
		inRows := float64(st.inRows)
		ops := inRows * st.opsPerRow()
		w := 0.0
		if st.chunks > 0 {
			w = float64(st.wSum) / float64(st.chunks)
		}
		ctx.Thread().SeqRead(inRows, w)
		ctx.vecCompute(ops*vecFilterCostPerOp + vecBatches(inRows)*vecBatchOverhead)
		ctx.Tracker.Stop(ou.VecFilter, ou.VecFilterFeatures(inRows, ops, vec.BatchRows), start)
	}
	return nil
}

// execVecScan runs a vectorizable scan chain and materializes its output.
func execVecScan(ctx *Ctx, p *plan.ScanPipeline) (*Batch, error) {
	est := capHint(p.Source.Est().Rows)
	rows := make([]storage.Tuple, 0, est)
	keepIDs := p.HasRowIDs()
	var rowIDs []storage.RowID
	if keepIDs {
		rowIDs = make([]storage.RowID, 0, est)
	}
	err := runVecScan(ctx, p, func(r storage.RowID, t storage.Tuple) {
		rows = append(rows, t)
		if keepIDs {
			rowIDs = append(rowIDs, r)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Batch{Rows: rows, RowIDs: rowIDs}, nil
}

// execHashJoinVec is the vectorized-mode hash join. The build side is the
// fused path's: a real build into the Ctx-reused joinTable with charges
// replayed in a HASHJOIN_BUILD bracket (features flagged interpreted, since
// build cost is mode-independent here and the kind carries no vec profile).
// The probe side streams the right input — batch-at-a-time when it is a
// vectorizable scan chain — and replays as a VEC_PROBE bracket.
func execHashJoinVec(ctx *Ctx, n *plan.HashJoinNode) (*Batch, error) {
	left, err := Execute(ctx, n.Left)
	if err != nil {
		return nil, err
	}

	// Real build, charges replayed in the build bracket below.
	jt := &ctx.jt
	jt.reset(len(left.Rows))
	for i, r := range left.Rows {
		ctx.keyBuf = index.AppendKeyFromTuple(ctx.keyBuf[:0], r, n.LeftKeys)
		jt.insert(ctx.keyBuf, int32(i))
	}

	// Real probe: stream the right side.
	rightWidths := getIntBuf()
	defer putIntBuf(rightWidths)
	rightRows, rightCols := 0, 0
	out := make([]storage.Tuple, 0, capHint(n.Rows.Rows))
	var cur storage.Tuple
	emit := func(row int32) {
		out = append(out, ctx.arena.join(left.Rows[row], cur))
	}
	probe := func(_ storage.RowID, r storage.Tuple) {
		rightRows++
		if rightRows == 1 {
			rightCols = len(r)
		}
		*rightWidths = append(*rightWidths, r.Bytes())
		ctx.keyBuf = index.AppendKeyFromTuple(ctx.keyBuf[:0], r, n.RightKeys)
		cur = r
		jt.probe(ctx.keyBuf, emit)
	}
	if rp := vecScanOf(ctx, n.Right); rp != nil {
		// The probe-side pipeline's OU records (VEC_SCAN + stages) emit
		// here, before the build/probe brackets — same relative order as
		// the fused and operator-at-a-time paths.
		if err := runVecScan(ctx, rp, probe); err != nil {
			return nil, err
		}
	} else {
		right, err := Execute(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		for _, r := range right.Rows {
			probe(0, r)
		}
	}

	// Build bracket replay — identical to execHashJoinFused's.
	buildRows := float64(len(left.Rows))
	keyBytes := 8.0 * float64(len(n.LeftKeys))
	entryBytes := keyBytes + 8 + 16
	htBytes := buildRows * entryBytes

	start := ctx.Tracker.Start()
	ctx.Thread().Alloc(htBytes) // join hash tables pre-allocate (Sec 4.3)
	nb := len(left.Rows)
	ctx.compute(10 * float64(nb))
	ctx.Thread().RandWrite(float64(nb), htBytes)
	if ctx.JHTSleepEvery > 0 && nb > 0 {
		ctx.Thread().Sleep(float64((nb-1)/ctx.JHTSleepEvery + 1))
	}
	card := float64(jt.distinct)
	leftW := left.AvgWidth()
	buildFeats := ou.ExecFeatures(buildRows, left.NumCols(), leftW, card, entryBytes, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.HashJoinBuild, buildFeats, start)

	// Probe bracket replay, as a VEC_PROBE record.
	start = ctx.Tracker.Start()
	rr := float64(rightRows)
	ctx.Thread().RandRead(rr, htBytes, 1)
	ctx.vecCompute(rr*vecProbeCostPerRow + vecBatches(rr)*vecBatchOverhead)
	outRows := float64(len(out))
	rightW := sampledWidth(*rightWidths)
	ctx.Thread().SeqWrite(outRows, leftW+rightW)
	probeFeats := ou.VecProbeFeatures(rr+outRows, float64(rightCols), rightW,
		card, leftW+rightW, vec.BatchRows)
	ctx.Tracker.Stop(ou.VecProbe, probeFeats, start)

	ctx.Thread().Free(htBytes) // the hash table is query-lifetime scratch
	return &Batch{Rows: out}, nil
}
