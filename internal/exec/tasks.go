package exec

import (
	"mb2/internal/gc"
	"mb2/internal/ou"
	"mb2/internal/wal"
)

// RunGC performs one garbage-collection pass as a GC batch OU, with
// intervalUS the time since the previous pass (the batch OU's third
// feature).
func RunGC(ctx *Ctx, intervalUS float64) gc.RunStats {
	start := ctx.Tracker.Start()
	st := ctx.DB.GC.Run(ctx.Thread())
	feats := ou.GCFeatures(float64(st.TxnsProcessed), float64(st.VersionsPruned), intervalUS)
	ctx.Tracker.Stop(ou.GC, feats, start)
	return st
}

// RunLogSerialize drains the WAL record queue into log buffers as a
// LOG_SERIALIZE batch OU.
func RunLogSerialize(ctx *Ctx, intervalUS float64) wal.SerializeStats {
	start := ctx.Tracker.Start()
	st := ctx.DB.WAL.Serialize(ctx.Thread())
	feats := ou.LogSerializeFeatures(float64(st.Records), float64(st.Bytes), float64(st.Buffers), intervalUS)
	ctx.Tracker.Stop(ou.LogSerialize, feats, start)
	return st
}

// RunLogFlush writes sealed log buffers to the device as a LOG_FLUSH batch
// OU. A device error (crash) is reported alongside the partial stats; the
// OU record is still emitted for the work performed before the failure.
func RunLogFlush(ctx *Ctx, intervalUS float64) (wal.FlushStats, error) {
	start := ctx.Tracker.Start()
	st, err := ctx.DB.WAL.Flush(ctx.Thread())
	feats := ou.LogFlushFeatures(float64(st.Bytes), float64(st.Buffers), intervalUS)
	ctx.Tracker.Stop(ou.LogFlush, feats, start)
	return st, err
}
