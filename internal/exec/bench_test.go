package exec_test

// Microbenchmarks for the hot execution pipelines, one sub-benchmark per
// (scenario, variant). `make bench-exec` records these into BENCH_exec.json
// via cmd/mb2-execbench; tier-1 CI runs them with -benchtime=1x as a smoke
// test. The variants of a scenario execute identical plans over identical
// data, so ns/op and allocs/op differences measure the execution path, not
// the workload.

import (
	"fmt"
	"testing"

	"mb2/internal/exec"
	"mb2/internal/exec/execbench"
)

const benchRows = 20000

// Smaller table for the partition sweep: it benchmarks parts x dop cells,
// so each cell stays cheap enough for the tier-1 -benchtime=1x smoke run.
const benchPartRows = 8000

func BenchmarkPipelines(b *testing.B) {
	db, err := execbench.NewDB(benchRows)
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range execbench.Scenarios(benchRows) {
		for _, v := range execbench.Variants() {
			b.Run(sc.Name+"/"+v.Name, func(b *testing.B) {
				ctx := execbench.NewCtx(db, v)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := exec.Execute(ctx, sc.Plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPartitionPipelines sweeps the parallel scan and partition-wise
// join over partition-count x DOP cells. `make bench-partition` records the
// full sweep into BENCH_partition.json; tier-1 smoke runs it at
// -benchtime=1x to keep the parallel paths exercised on every run.
func BenchmarkPartitionPipelines(b *testing.B) {
	for _, parts := range []int{1, 4} {
		for _, dop := range []int{1, 4} {
			if dop > parts {
				continue
			}
			db, err := execbench.NewPartitionedDB(benchPartRows, parts, dop)
			if err != nil {
				b.Fatal(err)
			}
			for _, sc := range execbench.PartitionScenarios(benchPartRows) {
				name := fmt.Sprintf("%s/parts=%d/dop=%d", sc.Name, parts, dop)
				b.Run(name, func(b *testing.B) {
					ctx := execbench.NewCtxDOP(db, execbench.Variants()[0], dop)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := exec.Execute(ctx, sc.Plan); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
