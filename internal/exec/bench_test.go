package exec_test

// Microbenchmarks for the hot execution pipelines, one sub-benchmark per
// (scenario, variant). `make bench-exec` records these into BENCH_exec.json
// via cmd/mb2-execbench; tier-1 CI runs them with -benchtime=1x as a smoke
// test. The variants of a scenario execute identical plans over identical
// data, so ns/op and allocs/op differences measure the execution path, not
// the workload.

import (
	"testing"

	"mb2/internal/exec"
	"mb2/internal/exec/execbench"
)

const benchRows = 20000

func BenchmarkPipelines(b *testing.B) {
	db, err := execbench.NewDB(benchRows)
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range execbench.Scenarios(benchRows) {
		for _, v := range execbench.Variants() {
			b.Run(sc.Name+"/"+v.Name, func(b *testing.B) {
				ctx := execbench.NewCtx(db, v)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := exec.Execute(ctx, sc.Plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
