package exec_test

// Fused/unfused equivalence property test: across a seeded matrix of
// SmallBank, TATP, and TPC-H query templates, the three execution
// configurations —
//
//	(a) interpreted            (operator-at-a-time)
//	(b) compiled, fusion off   (operator-at-a-time)
//	(c) compiled, fused        (single-pass pipelines)
//
// must return identical result multisets; (b) and (c) must emit identical
// OU record streams (same kinds, same order, bit-identical features,
// labels equal to float rounding); and (a) must match (c) on every feature
// except the trailing execution-mode flag. This is the contract that keeps
// models trained on either path valid for both.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/exec"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/workload"
)

// canonRows renders a batch as a sorted multiset of row strings.
func canonRows(b *exec.Batch) []string {
	out := make([]string, len(b.Rows))
	for i, r := range b.Rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return out
}

// relDiff is the symmetric relative difference, 0 when both are 0.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d / m
}

func TestFusedUnfusedEquivalence(t *testing.T) {
	// Bulk replay charges differ from n accumulated per-row charges only by
	// float summation order.
	const labelTol = 1e-9

	cases := []struct {
		bench workload.Benchmark
		scale float64
	}{
		{workload.SmallBank{}, 0.05},
		{workload.TATP{}, 0.05},
		{workload.TPCH{}, 0.02},
	}
	seeds := []int64{1, 7}

	for _, tc := range cases {
		for _, seed := range seeds {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s/seed%d", tc.bench.Name(), seed), func(t *testing.T) {
				t.Parallel()
				db := engine.Open(catalog.DefaultKnobs())
				if err := tc.bench.Load(db, tc.scale, seed); err != nil {
					t.Fatal(err)
				}
				templates := tc.bench.Templates(db, seed)
				if len(templates) == 0 {
					t.Fatal("no templates")
				}

				type result struct {
					rows    []string
					recs    []metrics.Record
					fusedPL int
				}
				run := func(name string, mode catalog.ExecutionMode, disableFusion bool) map[string]result {
					out := make(map[string]result, len(templates))
					for _, q := range templates {
						col := metrics.NewCollector()
						ctx := &exec.Ctx{
							DB:            db,
							Tracker:       metrics.NewTracker(col, hw.NewThread(hw.DefaultCPU())),
							Mode:          mode,
							Contenders:    1,
							DisableFusion: disableFusion,
						}
						b, err := exec.Execute(ctx, q.Plan)
						if err != nil {
							t.Fatalf("%s/%s: %v", name, q.Name, err)
						}
						out[q.Name] = result{rows: canonRows(b), recs: col.Drain(), fusedPL: ctx.FusedPipelines}
					}
					return out
				}

				interp := run("interpreted", catalog.Interpret, false)
				unfused := run("compiled-unfused", catalog.Compile, true)
				fused := run("compiled-fused", catalog.Compile, false)

				totalFused := 0
				for _, q := range templates {
					i, u, f := interp[q.Name], unfused[q.Name], fused[q.Name]
					totalFused += f.fusedPL
					if u.fusedPL != 0 {
						t.Errorf("%s: DisableFusion ran %d fused pipelines", q.Name, u.fusedPL)
					}

					// Result sets identical across all three configurations.
					for who, other := range map[string][]string{"interpreted": i.rows, "compiled-unfused": u.rows} {
						if len(other) != len(f.rows) {
							t.Fatalf("%s: %s returned %d rows, fused %d", q.Name, who, len(other), len(f.rows))
						}
						for k := range other {
							if other[k] != f.rows[k] {
								t.Fatalf("%s: %s row %d = %s, fused = %s", q.Name, who, k, other[k], f.rows[k])
							}
						}
					}

					// OU record streams: fused vs unfused-compiled must agree
					// exactly on kind order and features, and on labels to
					// rounding; interpreted agrees on all features except the
					// trailing mode flag.
					if len(i.recs) != len(f.recs) || len(u.recs) != len(f.recs) {
						t.Fatalf("%s: OU record counts %d/%d/%d (interp/unfused/fused)",
							q.Name, len(i.recs), len(u.recs), len(f.recs))
					}
					for k := range f.recs {
						fr, ur, ir := f.recs[k], u.recs[k], i.recs[k]
						if fr.Kind != ur.Kind || fr.Kind != ir.Kind {
							t.Fatalf("%s: record %d kinds %v/%v/%v", q.Name, k, ir.Kind, ur.Kind, fr.Kind)
						}
						if len(fr.Features) != len(ur.Features) || len(fr.Features) != len(ir.Features) {
							t.Fatalf("%s: record %d feature lengths differ", q.Name, k)
						}
						for j := range fr.Features {
							if fr.Features[j] != ur.Features[j] {
								t.Errorf("%s: record %d (%v) feature %d: fused %v vs unfused %v",
									q.Name, k, fr.Kind, j, fr.Features[j], ur.Features[j])
							}
							// The mode flag is by construction the LAST
							// feature of every execution OU vector.
							if j < len(fr.Features)-1 && fr.Features[j] != ir.Features[j] {
								t.Errorf("%s: record %d (%v) feature %d: fused %v vs interpreted %v",
									q.Name, k, fr.Kind, j, fr.Features[j], ir.Features[j])
							}
						}
						fv, uv := fr.Labels.Vec(), ur.Labels.Vec()
						for j := range fv {
							if relDiff(fv[j], uv[j]) > labelTol {
								t.Errorf("%s: record %d (%v) label %d: fused %v vs unfused %v",
									q.Name, k, fr.Kind, j, fv[j], uv[j])
							}
						}
					}
				}
				if totalFused == 0 {
					t.Error("no template exercised the fused path")
				}
			})
		}
	}
}
