package exec

import (
	"fmt"
	"sort"

	"mb2/internal/catalog"
	"mb2/internal/index"
	"mb2/internal/ou"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

// Execute runs a plan and returns the materialized result. In compiled
// mode, plan fragments the pipeline analyzer recognizes run on the fused
// single-pass path (pipeline.go); in vectorized mode, qualifying scan
// chains and hash joins run batch-at-a-time (vectorized.go) and emit their
// own VEC_* OUs; everything else — and all of interpreted mode — takes the
// operator-at-a-time path below. The compiled paths emit identical OU
// record streams; all paths produce bit-identical results.
func Execute(ctx *Ctx, node plan.Node) (*Batch, error) {
	// Operator-boundary cancellation point: a killed session aborts here
	// before the next operator starts (see Ctx.Interrupt).
	if ctx.Interrupt != nil {
		if err := ctx.Interrupt(); err != nil {
			return nil, err
		}
	}
	// Partitioned tables route qualifying scans and joins through the
	// exchange-style parallel operators (parallel.go) in every execution
	// mode; unpartitioned tables never enter them.
	switch n := node.(type) {
	case *plan.SeqScanNode:
		if b, ok := tryParallelScan(ctx, n); ok {
			return b, nil
		}
	case *plan.HashJoinNode:
		if b, ok := tryPartitionJoin(ctx, n); ok {
			return b, nil
		}
	}
	if ctx.fused() {
		switch n := node.(type) {
		case *plan.HashJoinNode:
			return execHashJoinFused(ctx, n)
		default:
			if p := plan.FuseScan(node); p != nil {
				return execFusedScan(ctx, p)
			}
		}
	}
	if ctx.Mode == catalog.Vectorize {
		switch n := node.(type) {
		case *plan.HashJoinNode:
			return execHashJoinVec(ctx, n)
		default:
			if p := vecScanOf(ctx, node); p != nil {
				return execVecScan(ctx, p)
			}
		}
	}
	switch n := node.(type) {
	case *plan.SeqScanNode:
		return execSeqScan(ctx, n)
	case *plan.IdxScanNode:
		return execIdxScan(ctx, n)
	case *plan.HashJoinNode:
		return execHashJoin(ctx, n)
	case *plan.IndexJoinNode:
		return execIndexJoin(ctx, n)
	case *plan.AggNode:
		return execAgg(ctx, n)
	case *plan.SortNode:
		return execSort(ctx, n)
	case *plan.ProjectNode:
		return execProject(ctx, n)
	case *plan.FilterNode:
		return execFilter(ctx, n)
	case *plan.InsertNode:
		return execInsert(ctx, n)
	case *plan.UpdateNode:
		return execUpdate(ctx, n)
	case *plan.DeleteNode:
		return execDelete(ctx, n)
	case *plan.OutputNode:
		return execOutput(ctx, n)
	default:
		return nil, fmt.Errorf("exec: unsupported plan node %T", node)
	}
}

func project(rows []storage.Tuple, cols []int) []storage.Tuple {
	if cols == nil {
		return rows
	}
	out := make([]storage.Tuple, len(rows))
	for i, r := range rows {
		t := make(storage.Tuple, len(cols))
		for j, c := range cols {
			t[j] = r[c]
		}
		out[i] = t
	}
	return out
}

func execSeqScan(ctx *Ctx, n *plan.SeqScanNode) (*Batch, error) {
	tbl := ctx.DB.Table(n.Table)
	if tbl == nil {
		return nil, fmt.Errorf("exec: table %q does not exist", n.Table)
	}
	id, ts := ctx.snapshot()

	start := ctx.Tracker.Start()
	nslots := tbl.NumRows()
	rows := make([]storage.Tuple, 0, nslots)
	rowIDs := make([]storage.RowID, 0, nslots)
	tbl.Scan(ctx.Thread(), id, ts, func(r storage.RowID, t storage.Tuple) bool {
		rows = append(rows, t)
		rowIDs = append(rowIDs, r)
		return true
	})
	scanned := float64(len(rows))
	ctx.compute(scanned * 6)
	width := float64(tbl.Meta.Schema.TupleBytes())
	cols := float64(tbl.Meta.Schema.NumColumns())
	if n.Filter == nil && n.Project != nil {
		rows = project(rows, n.Project)
		ctx.compute(scanned * float64(len(n.Project)) * 2)
	}
	feats := ou.ExecFeatures(scanned, cols, width, 0, 0, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.SeqScan, feats, start)

	b := &Batch{Rows: rows, RowIDs: rowIDs}
	if n.Filter != nil {
		b = applyFilter(ctx, b, n.Filter)
		if n.Project != nil {
			b.Rows = project(b.Rows, n.Project)
			b.RowIDs = nil
		}
	}
	if n.Project != nil {
		b.RowIDs = nil
	}
	return b, nil
}

// applyFilter evaluates a predicate over the batch as an ARITHMETIC OU.
func applyFilter(ctx *Ctx, b *Batch, pred plan.Expr) *Batch {
	start := ctx.Tracker.Start()
	nrows := b.NumRows()
	ops := nrows * pred.Ops()
	ctx.Thread().SeqRead(nrows, b.AvgWidth())
	ctx.compute(ops * 2)
	rows := make([]storage.Tuple, 0, len(b.Rows))
	var rowIDs []storage.RowID
	if b.RowIDs != nil {
		rowIDs = make([]storage.RowID, 0, len(b.Rows))
	}
	for i, r := range b.Rows {
		if plan.Truthy(pred.Eval(r)) {
			rows = append(rows, r)
			if b.RowIDs != nil {
				rowIDs = append(rowIDs, b.RowIDs[i])
			}
		}
	}
	ctx.Tracker.Stop(ou.Arithmetic, ou.ArithmeticFeatures(ops, ctx.compiled()), start)
	if b.RowIDs == nil {
		rowIDs = nil
	}
	return &Batch{Rows: rows, RowIDs: rowIDs}
}

func execIdxScan(ctx *Ctx, n *plan.IdxScanNode) (*Batch, error) {
	tbl := ctx.DB.Table(n.Table)
	idx := ctx.DB.Index(n.Index)
	if tbl == nil || idx == nil {
		return nil, fmt.Errorf("exec: missing table %q or index %q", n.Table, n.Index)
	}
	id, ts := ctx.snapshot()
	loops := n.Loops
	if loops < 1 {
		loops = 1
	}

	start := ctx.Tracker.Start()
	var rowIDs []storage.RowID
	if n.Eq != nil {
		rowIDs = idx.SearchEQ(ctx.Thread(), index.EncodeKey(n.Eq...), loops)
	} else {
		var lo, hi index.Key
		if n.Lo != nil {
			lo = index.EncodeKey(n.Lo...)
		}
		if n.Hi != nil {
			hi = index.EncodeKey(n.Hi...)
		}
		idx.SearchRange(ctx.Thread(), lo, hi, func(_ index.Key, r storage.RowID) bool {
			rowIDs = append(rowIDs, r)
			return true
		})
	}
	rows := make([]storage.Tuple, 0, len(rowIDs))
	liveIDs := make([]storage.RowID, 0, len(rowIDs))
	for _, r := range rowIDs {
		t, err := tbl.Read(ctx.Thread(), r, id, ts)
		if err != nil {
			continue // version not visible at this snapshot
		}
		rows = append(rows, t)
		liveIDs = append(liveIDs, r)
	}
	matched := float64(len(rows))
	ctx.compute(matched * 8)
	width := float64(tbl.Meta.Schema.TupleBytes())
	cols := float64(tbl.Meta.Schema.NumColumns())
	if n.Filter == nil && n.Project != nil {
		rows = project(rows, n.Project)
		ctx.compute(matched * float64(len(n.Project)) * 2)
	}
	// The cardinality feature carries the index's key population: descent
	// depth and cache behavior depend on the structure's size, not just on
	// how many rows match.
	feats := ou.ExecFeatures(matched, cols, width, float64(idx.NumRows()), 0, loops, ctx.compiled())
	ctx.Tracker.Stop(ou.IdxScan, feats, start)

	b := &Batch{Rows: rows, RowIDs: liveIDs}
	if n.Filter != nil {
		b = applyFilter(ctx, b, n.Filter)
		if n.Project != nil {
			b.Rows = project(b.Rows, n.Project)
			b.RowIDs = nil
		}
	}
	if n.Project != nil {
		b.RowIDs = nil
	}
	return b, nil
}

func keyOf(t storage.Tuple, cols []int) string {
	return string(index.KeyFromTuple(t, cols))
}

func execHashJoin(ctx *Ctx, n *plan.HashJoinNode) (*Batch, error) {
	left, err := Execute(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	right, err := Execute(ctx, n.Right)
	if err != nil {
		return nil, err
	}

	// Build phase: hash table over the left input.
	buildRows := left.NumRows()
	keyBytes := 8.0 * float64(len(n.LeftKeys))
	entryBytes := keyBytes + 8 + 16
	htBytes := buildRows * entryBytes

	start := ctx.Tracker.Start()
	ctx.Thread().Alloc(htBytes) // join hash tables pre-allocate (Sec 4.3)
	// Keys are encoded into the worker's scratch buffer; the map[string]
	// index with an in-place []byte→string conversion is allocation-free,
	// and pointer-valued buckets let repeat keys append without a map write.
	// Only the first occurrence of a distinct key allocates its string.
	ht := make(map[string]*[]int32, len(left.Rows))
	for i, r := range left.Rows {
		ctx.keyBuf = index.AppendKeyFromTuple(ctx.keyBuf[:0], r, n.LeftKeys)
		if b, ok := ht[string(ctx.keyBuf)]; ok {
			*b = append(*b, int32(i))
		} else {
			bucket := make([]int32, 1, 4)
			bucket[0] = int32(i)
			ht[string(ctx.keyBuf)] = &bucket
		}
		ctx.compute(10)
		ctx.Thread().RandWrite(1, htBytes)
		if ctx.JHTSleepEvery > 0 && i%ctx.JHTSleepEvery == 0 {
			ctx.Thread().Sleep(1)
		}
	}
	card := float64(len(ht))
	buildFeats := ou.ExecFeatures(buildRows, left.NumCols(), left.AvgWidth(), card, entryBytes, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.HashJoinBuild, buildFeats, start)

	// Probe phase.
	start = ctx.Tracker.Start()
	out := make([]storage.Tuple, 0, capHint(n.Rows.Rows))
	for _, r := range right.Rows {
		ctx.keyBuf = index.AppendKeyFromTuple(ctx.keyBuf[:0], r, n.RightKeys)
		ctx.compute(10)
		ctx.Thread().RandRead(1, htBytes, 1)
		if b, ok := ht[string(ctx.keyBuf)]; ok {
			for _, li := range *b {
				joined := make(storage.Tuple, 0, len(left.Rows[li])+len(r))
				joined = append(joined, left.Rows[li]...)
				joined = append(joined, r...)
				out = append(out, joined)
			}
		}
	}
	outRows := float64(len(out))
	ctx.Thread().SeqWrite(outRows, left.AvgWidth()+right.AvgWidth())
	// The probe's work volume covers both the probing input and the
	// materialized matches, so its tuple-count feature is their sum —
	// otherwise low-cardinality joins with large fan-out are invisible to
	// the model. Its payload feature is the emitted tuple width, which
	// drives the materialization cost.
	probeFeats := ou.ExecFeatures(right.NumRows()+outRows, right.NumCols(), right.AvgWidth(),
		card, left.AvgWidth()+right.AvgWidth(), 1, ctx.compiled())
	ctx.Tracker.Stop(ou.HashJoinProbe, probeFeats, start)

	ctx.Thread().Free(htBytes) // the hash table is query-lifetime scratch
	return &Batch{Rows: out}, nil
}

func execIndexJoin(ctx *Ctx, n *plan.IndexJoinNode) (*Batch, error) {
	outer, err := Execute(ctx, n.Outer)
	if err != nil {
		return nil, err
	}
	tbl := ctx.DB.Table(n.Table)
	idx := ctx.DB.Index(n.Index)
	if tbl == nil || idx == nil {
		return nil, fmt.Errorf("exec: missing table %q or index %q", n.Table, n.Index)
	}
	id, ts := ctx.snapshot()
	loops := outer.NumRows()
	if loops < 1 {
		loops = 1
	}

	if ctx.fused() {
		ctx.FusedPipelines++ // the probe loop below is itself a fused pass
	}
	start := ctx.Tracker.Start()
	out := make([]storage.Tuple, 0, capHint(n.Rows.Rows))
	// Probe keys encode into the worker scratch buffer and postings collect
	// into a pooled buffer via the copy-free lookup path; matches buffer
	// outside the tree's read lock so version reads never nest inside it.
	rowBuf := getRowIDBuf()
	matches := *rowBuf
	for _, or := range outer.Rows {
		ctx.keyBuf = index.AppendKeyFromTuple(ctx.keyBuf[:0], or, n.OuterKeys)
		matches = matches[:0]
		idx.SearchEQFunc(ctx.Thread(), ctx.keyBuf, loops, func(r storage.RowID) bool {
			matches = append(matches, r)
			return true
		})
		for _, r := range matches {
			inner, err := tbl.Read(ctx.Thread(), r, id, ts)
			if err != nil {
				continue
			}
			out = append(out, ctx.arena.join(or, inner))
		}
		ctx.compute(12)
	}
	*rowBuf = matches
	putRowIDBuf(rowBuf)
	width := float64(tbl.Meta.Schema.TupleBytes())
	feats := ou.ExecFeatures(float64(len(out)), outer.NumCols(), width, float64(idx.NumRows()), 0, loops, ctx.compiled())
	ctx.Tracker.Stop(ou.IdxScan, feats, start)
	return &Batch{Rows: out}, nil
}

type aggState struct {
	group  storage.Tuple
	counts []float64
	sums   []float64
	mins   []float64
	maxs   []float64
	init   bool
}

func execAgg(ctx *Ctx, n *plan.AggNode) (*Batch, error) {
	child, err := Execute(ctx, n.Child)
	if err != nil {
		return nil, err
	}
	entryBytes := 8.0*float64(len(n.GroupBy)) + 24*float64(len(n.Aggs)) + 16

	// Build: aggregate hash table grows with inserted unique keys (Sec 4.3).
	start := ctx.Tracker.Start()
	groups := make(map[string]*aggState)
	var order []string
	for _, r := range child.Rows {
		k := keyOf(r, n.GroupBy)
		st, ok := groups[k]
		if !ok {
			st = &aggState{
				group:  projectRow(r, n.GroupBy),
				counts: make([]float64, len(n.Aggs)),
				sums:   make([]float64, len(n.Aggs)),
				mins:   make([]float64, len(n.Aggs)),
				maxs:   make([]float64, len(n.Aggs)),
			}
			groups[k] = st
			order = append(order, k)
			ctx.Thread().Alloc(entryBytes)
		}
		htBytes := float64(len(groups)) * entryBytes
		ctx.Thread().RandRead(1, htBytes, 1)
		for ai, spec := range n.Aggs {
			var v float64
			if spec.Fn != plan.Count {
				v = valueAsFloat(spec.Arg.Eval(r))
			}
			st.counts[ai]++
			st.sums[ai] += v
			if !st.init || v < st.mins[ai] {
				st.mins[ai] = v
			}
			if !st.init || v > st.maxs[ai] {
				st.maxs[ai] = v
			}
			ctx.compute(4 + spec.Arg.Ops())
		}
		st.init = true
		ctx.compute(8)
	}
	card := float64(len(groups))
	buildFeats := ou.ExecFeatures(child.NumRows(), child.NumCols(), child.AvgWidth(), card, entryBytes, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.AggBuild, buildFeats, start)

	// Probe/iterate: produce one output row per group.
	start = ctx.Tracker.Start()
	out := make([]storage.Tuple, 0, len(groups))
	for _, k := range order {
		st := groups[k]
		row := make(storage.Tuple, 0, len(st.group)+len(n.Aggs))
		row = append(row, st.group...)
		for ai, spec := range n.Aggs {
			switch spec.Fn {
			case plan.Count:
				row = append(row, storage.NewInt(int64(st.counts[ai])))
			case plan.Sum:
				row = append(row, storage.NewFloat(st.sums[ai]))
			case plan.Min:
				row = append(row, storage.NewFloat(st.mins[ai]))
			case plan.Max:
				row = append(row, storage.NewFloat(st.maxs[ai]))
			default: // Avg
				row = append(row, storage.NewFloat(st.sums[ai]/st.counts[ai]))
			}
			ctx.compute(3)
		}
		out = append(out, row)
	}
	ctx.Thread().SeqWrite(card, entryBytes)
	probeFeats := ou.ExecFeatures(card, float64(len(n.GroupBy)+len(n.Aggs)), entryBytes, card, entryBytes, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.AggProbe, probeFeats, start)

	ctx.Thread().Free(card * entryBytes)
	return &Batch{Rows: out}, nil
}

func projectRow(r storage.Tuple, cols []int) storage.Tuple {
	out := make(storage.Tuple, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

func valueAsFloat(v storage.Value) float64 {
	if v.Kind == catalog.Float64 {
		return v.F
	}
	return float64(v.I)
}

func execSort(ctx *Ctx, n *plan.SortNode) (*Batch, error) {
	child, err := Execute(ctx, n.Child)
	if err != nil {
		return nil, err
	}
	nrows := child.NumRows()
	width := child.AvgWidth()

	// Build: copy into the sort buffer and sort — O(n log n).
	start := ctx.Tracker.Start()
	buf := make([]storage.Tuple, len(child.Rows))
	copy(buf, child.Rows)
	ctx.Thread().Alloc(nrows * (width + 8))
	ctx.Thread().SeqWrite(nrows, width)
	comparisons := 0.0
	sort.SliceStable(buf, func(i, j int) bool {
		comparisons++
		for _, k := range n.Keys {
			c := buf[i][k.Col].Compare(buf[j][k.Col])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	ctx.compute(comparisons * float64(len(n.Keys)) * 4)
	buildFeats := ou.ExecFeatures(nrows, child.NumCols(), width, float64(len(n.Keys)), 0, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.SortBuild, buildFeats, start)

	// Iterate: stream the sorted output (bounded by the limit).
	start = ctx.Tracker.Start()
	out := buf
	if n.Limit > 0 && n.Limit < len(buf) {
		out = buf[:n.Limit]
	}
	ctx.Thread().SeqRead(float64(len(out)), width)
	ctx.compute(float64(len(out)) * 2)
	iterFeats := ou.ExecFeatures(float64(len(out)), child.NumCols(), width, float64(len(n.Keys)), 0, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.SortIter, iterFeats, start)

	return &Batch{Rows: out}, nil
}

func execProject(ctx *Ctx, n *plan.ProjectNode) (*Batch, error) {
	child, err := Execute(ctx, n.Child)
	if err != nil {
		return nil, err
	}
	start := ctx.Tracker.Start()
	opsPerRow := 0.0
	for _, e := range n.Exprs {
		opsPerRow += e.Ops()
	}
	ops := child.NumRows() * opsPerRow
	ctx.Thread().SeqRead(child.NumRows(), child.AvgWidth())
	ctx.compute(ops * 2)
	out := make([]storage.Tuple, len(child.Rows))
	for i, r := range child.Rows {
		t := make(storage.Tuple, len(n.Exprs))
		for j, e := range n.Exprs {
			t[j] = e.Eval(r)
		}
		out[i] = t
	}
	ctx.Tracker.Stop(ou.Arithmetic, ou.ArithmeticFeatures(ops, ctx.compiled()), start)
	return &Batch{Rows: out}, nil
}

func execFilter(ctx *Ctx, n *plan.FilterNode) (*Batch, error) {
	child, err := Execute(ctx, n.Child)
	if err != nil {
		return nil, err
	}
	return applyFilter(ctx, child, n.Pred), nil
}

func execOutput(ctx *Ctx, n *plan.OutputNode) (*Batch, error) {
	child, err := Execute(ctx, n.Child)
	if err != nil {
		return nil, err
	}
	start := ctx.Tracker.Start()
	nrows := child.NumRows()
	width := child.AvgWidth()
	ctx.Thread().SeqRead(nrows, width)
	ctx.compute(nrows * (child.NumCols()*4 + 6)) // wire-format serialization
	ctx.Thread().SeqWrite(nrows, width)          // socket buffer copy
	feats := ou.ExecFeatures(nrows, child.NumCols(), width, 0, 0, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.Output, feats, start)
	return child, nil
}
