// Package vec implements the columnar batch substrate of the vectorized
// execution mode (catalog.Vectorize): column-major value buffers, selection
// vectors, and filter/project kernels evaluated batch-at-a-time. The
// execution engine (internal/exec) drives it chunk by chunk — load up to
// BatchRows scan rows into a Batch, run the chain's filter and projection
// stages over the selection vector, then materialize the surviving lanes —
// with no intermediate row materialization between stages.
//
// # Selection-vector semantics
//
//   - Load fills every column from a chunk of scan rows and resets the
//     selection vector to the identity [0..n). A lane is an index into the
//     loaded chunk; Sel() lists the live lanes in ascending chunk order.
//   - Filter compacts the selection vector in place: surviving lanes keep
//     their values and relative order, dropped lanes are forgotten. Lane
//     values still index the originally loaded rows, so callers may map a
//     live lane back to its source row (for row-ID preservation) as long
//     as no expression projection has run.
//   - ProjectCols replaces the column set with a subset/reordering. It is
//     free in the columnar representation — no values move — and lane
//     numbering is unchanged.
//   - ProjectExprs computes new columns over the live lanes and rebases
//     the batch: the new columns are dense (one slot per formerly-live
//     lane) and the selection vector resets to the identity over them.
//     After a rebase, lanes no longer map to source rows — which is why
//     the executor only preserves row IDs through projection-free chains
//     (plan.ScanPipeline.HasRowIDs).
//
// Kernels must agree bit-for-bit with row-at-a-time plan.Expr evaluation:
// comparisons over same-kind operands use storage.Value.Compare and
// mixed-kind operands compare as floats, exactly as plan.Cmp.Eval does.
// Fast columnar paths exist for column-versus-constant comparisons and
// and/or compositions; every other expression falls back to assembling a
// scratch row per live lane and calling Eval, so arbitrary expressions
// remain supported with identical results.
//
// # Buffer ownership and reuse
//
//   - A Batch and everything it references (columns, selection vector,
//     masks, the scratch row) is worker-private scratch owned by the
//     executing goroutine. Get/Put recycle batches through a sync.Pool;
//     the executor returns its batch before Execute returns, mirroring
//     the pooled-scratch discipline in exec/pool.go.
//   - Values read out of a Batch (Value, Row) are copies of storage.Value
//     structs; string bytes are shared with the underlying version store,
//     which is immutable, so copies are safe to retain. Callers that
//     materialize output tuples must copy values out (the executor carves
//     them from its value arena) — batch memory is invalid after Put.
//   - Row returns the batch-owned scratch tuple, overwritten by the next
//     Row call. It exists for per-lane fallback evaluation; never retain
//     or hand it across lanes.
//
// # Determinism guarantees
//
// Batch processing is a pure function of the loaded rows and the stage
// list: lanes are visited in ascending order, compaction is stable, and
// kernels allocate no per-lane state. Repeated executions over the same
// snapshot produce identical selection vectors, identical output order,
// and identical values, which is what lets the vectorized mode share the
// engine's bit-for-bit seeded-replay guarantees (-verify digests) and the
// vectorized ≡ interpreted equivalence tests.
package vec
