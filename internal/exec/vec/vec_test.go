package vec

import (
	"fmt"
	"testing"

	"mb2/internal/plan"
	"mb2/internal/storage"
)

// mkRows builds n scan rows (int id, float f, varchar s) with deterministic
// contents.
func mkRows(n int) []storage.ScanRow {
	rows := make([]storage.ScanRow, n)
	for i := range rows {
		rows[i] = storage.ScanRow{
			Row: storage.RowID(i),
			Data: storage.Tuple{
				storage.NewInt(int64(i)),
				storage.NewFloat(float64(i) / 2),
				storage.NewString(fmt.Sprintf("s%d", i%5)),
			},
		}
	}
	return rows
}

// filterParity checks Batch.Filter against per-row Expr evaluation.
func filterParity(t *testing.T, pred plan.Expr, rows []storage.ScanRow) {
	t.Helper()
	b := GetBatch()
	defer PutBatch(b)
	b.Load(rows)
	b.Filter(pred)

	var want []int32
	for i, r := range rows {
		if plan.Truthy(pred.Eval(r.Data)) {
			want = append(want, int32(i))
		}
	}
	got := b.Sel()
	if len(got) != len(want) {
		t.Fatalf("%s: %d survivors, want %d", pred, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: survivor %d = lane %d, want %d", pred, i, got[i], want[i])
		}
	}
}

func TestFilterKernelParity(t *testing.T) {
	rows := mkRows(300)
	preds := []plan.Expr{
		// Columnar fast path: col vs const, same kinds.
		plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(100)},
		plan.Cmp{Op: plan.GE, L: plan.Col(1), R: plan.FloatConst(75)},
		plan.Cmp{Op: plan.EQ, L: plan.Col(2), R: plan.StrConst("s3")},
		plan.Cmp{Op: plan.NE, L: plan.Col(2), R: plan.StrConst("s0")},
		// Mixed kinds compare as floats, exactly like plan.Cmp.Eval.
		plan.Cmp{Op: plan.GT, L: plan.Col(0), R: plan.FloatConst(149.5)},
		plan.Cmp{Op: plan.LE, L: plan.Col(1), R: plan.IntConst(60)},
		// Col vs col, including the mixed-kind pair (id vs id/2).
		plan.Cmp{Op: plan.GT, L: plan.Col(0), R: plan.Col(1)},
		// Mask composition.
		plan.And{
			L: plan.Cmp{Op: plan.GE, L: plan.Col(0), R: plan.IntConst(20)},
			R: plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(250)},
		},
		plan.Or{
			L: plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(10)},
			R: plan.Cmp{Op: plan.EQ, L: plan.Col(2), R: plan.StrConst("s1")},
		},
		// Row-at-a-time fallback: arithmetic inside the comparison.
		plan.Cmp{
			Op: plan.EQ,
			L:  plan.Arith{Op: plan.Mul, L: plan.Col(0), R: plan.IntConst(2)},
			R:  plan.IntConst(84),
		},
		// Non-comparison predicate: truthiness of an arithmetic result.
		plan.Arith{Op: plan.Sub, L: plan.Col(0), R: plan.IntConst(7)},
	}
	for _, p := range preds {
		filterParity(t, p, rows)
	}
	// Empty input and empty survivor sets.
	filterParity(t, plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(0)}, rows)
	filterParity(t, plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(5)}, nil)
}

func TestSequentialFiltersCompact(t *testing.T) {
	rows := mkRows(100)
	b := GetBatch()
	defer PutBatch(b)
	b.Load(rows)
	b.Filter(plan.Cmp{Op: plan.GE, L: plan.Col(0), R: plan.IntConst(10)})
	b.Filter(plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(20)})
	if b.Live() != 10 {
		t.Fatalf("live = %d, want 10", b.Live())
	}
	for i, lane := range b.Sel() {
		if lane != int32(10+i) {
			t.Fatalf("survivor %d = lane %d", i, lane)
		}
	}
}

func TestProjectColsIsViewOnly(t *testing.T) {
	rows := mkRows(50)
	b := GetBatch()
	defer PutBatch(b)
	b.Load(rows)
	b.Filter(plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(25)})
	b.ProjectCols([]int{2, 0})
	if b.NumCols() != 2 {
		t.Fatalf("cols = %d", b.NumCols())
	}
	// Lane numbering survives a column projection: lanes still index the
	// loaded chunk.
	for _, lane := range b.Sel() {
		if got := b.Value(1, lane); got.I != int64(lane) {
			t.Fatalf("lane %d col1 = %v", lane, got)
		}
		if got := b.Value(0, lane); got.S != fmt.Sprintf("s%d", lane%5) {
			t.Fatalf("lane %d col0 = %v", lane, got)
		}
	}
}

func TestProjectExprsRebasesSelection(t *testing.T) {
	rows := mkRows(40)
	b := GetBatch()
	defer PutBatch(b)
	b.Load(rows)
	pred := plan.Cmp{Op: plan.GE, L: plan.Col(0), R: plan.IntConst(30)}
	b.Filter(pred)
	exprs := []plan.Expr{
		plan.Arith{Op: plan.Add, L: plan.Col(0), R: plan.IntConst(1)},
		plan.Col(1),
	}
	b.ProjectExprs(exprs)
	if b.Live() != 10 || b.NumCols() != 2 {
		t.Fatalf("live=%d cols=%d", b.Live(), b.NumCols())
	}
	for i, lane := range b.Sel() {
		if lane != int32(i) {
			t.Fatalf("selection not rebased: %v", b.Sel())
		}
		src := 30 + i
		if got := b.Value(0, lane); got.I != int64(src+1) {
			t.Fatalf("row %d col0 = %v", i, got)
		}
		if got := b.Value(1, lane); got.F != float64(src)/2 {
			t.Fatalf("row %d col1 = %v", i, got)
		}
	}
}

func TestBatchReuseAcrossChunks(t *testing.T) {
	b := GetBatch()
	defer PutBatch(b)
	// A second Load must fully reset state left by filters and projections.
	b.Load(mkRows(80))
	b.Filter(plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(5)})
	b.ProjectExprs([]plan.Expr{plan.Col(2)})

	rows := mkRows(60)
	b.Load(rows)
	if b.Live() != 60 || b.NumCols() != 3 {
		t.Fatalf("after reload: live=%d cols=%d", b.Live(), b.NumCols())
	}
	for _, lane := range b.Sel() {
		if got := b.Value(0, lane); got.I != int64(lane) {
			t.Fatalf("lane %d col0 = %v", lane, got)
		}
	}
}

func TestLaneBytes(t *testing.T) {
	b := GetBatch()
	defer PutBatch(b)
	rows := mkRows(3)
	b.Load(rows)
	for _, lane := range b.Sel() {
		if got, want := b.LaneBytes(lane), rows[lane].Data.Bytes(); got != want {
			t.Fatalf("lane %d bytes = %d, want %d", lane, got, want)
		}
	}
}
