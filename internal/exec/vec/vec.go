package vec

import (
	"sync"

	"mb2/internal/catalog"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

// BatchRows is the number of tuples processed per batch: the vectorized
// mode's tunable constant, recorded as the trailing batch_rows feature of
// every VEC_* OU so the models see the knob rather than assuming it.
const BatchRows = 1024

// Batch is a column-major chunk of tuples plus a selection vector over its
// lanes. See the package comment for the lane/selection contract and the
// buffer-ownership rules.
type Batch struct {
	cols    [][]storage.Value // current view: one entry per visible column
	viewBuf [][]storage.Value // spare header slice swapped with cols
	pool    [][]storage.Value // arrays owned by this batch; pool[:used] are live
	used    int
	n       int     // lanes loaded by the last Load (or rebase)
	sel     []int32 // live lanes, ascending
	masks   [][]bool
	scratch storage.Tuple
}

var batchPool = sync.Pool{New: func() any { return &Batch{} }}

// GetBatch returns a pooled batch ready for Load.
func GetBatch() *Batch { return batchPool.Get().(*Batch) }

// PutBatch returns a batch to the pool. The caller must not retain the
// batch or any value slice it handed out.
func PutBatch(b *Batch) {
	b.cols = b.cols[:0]
	b.sel = b.sel[:0]
	b.n = 0
	b.used = 0
	batchPool.Put(b)
}

// grabCol hands out an owned column array of n values, recycling arrays
// across chunks. Arrays in pool[:used] back the current view and are never
// handed out again until the next Load resets the chunk.
func (b *Batch) grabCol(n int) []storage.Value {
	if b.used == len(b.pool) {
		b.pool = append(b.pool, make([]storage.Value, 0, BatchRows))
	}
	c := b.pool[b.used]
	if cap(c) < n {
		c = make([]storage.Value, 0, n)
		b.pool[b.used] = c
	}
	b.used++
	return c[:n]
}

// Load fills the batch from a chunk of scan rows: every column is copied
// into column-major storage and the selection vector resets to the
// identity. All column arrays from the previous chunk are recycled.
func (b *Batch) Load(rows []storage.ScanRow) {
	b.used = 0
	n := len(rows)
	b.n = n
	ncols := 0
	if n > 0 {
		ncols = len(rows[0].Data)
	}
	b.cols = b.cols[:0]
	for c := 0; c < ncols; c++ {
		col := b.grabCol(n)
		for i := range rows {
			col[i] = rows[i].Data[c]
		}
		b.cols = append(b.cols, col)
	}
	if cap(b.sel) < n {
		b.sel = make([]int32, n)
	}
	b.sel = b.sel[:n]
	for i := range b.sel {
		b.sel[i] = int32(i)
	}
}

// Live returns the number of live lanes.
func (b *Batch) Live() int { return len(b.sel) }

// Sel returns the live lanes in ascending order. The slice is batch-owned;
// it is invalidated by the next Filter/ProjectExprs/Load.
func (b *Batch) Sel() []int32 { return b.sel }

// NumCols returns the number of visible columns.
func (b *Batch) NumCols() int { return len(b.cols) }

// Value returns the value at (col, lane).
func (b *Batch) Value(col int, lane int32) storage.Value { return b.cols[col][lane] }

// LaneBytes returns the byte width of the lane across the visible columns:
// the columnar equivalent of storage.Tuple.Bytes, used for width sampling.
func (b *Batch) LaneBytes(lane int32) int {
	total := 0
	for c := range b.cols {
		total += b.cols[c][lane].Bytes()
	}
	return total
}

// Row assembles the lane into the batch-owned scratch tuple. The returned
// tuple is overwritten by the next Row call; never retain it.
func (b *Batch) Row(lane int32) storage.Tuple {
	if cap(b.scratch) < len(b.cols) {
		b.scratch = make(storage.Tuple, len(b.cols))
	}
	t := b.scratch[:len(b.cols)]
	for c := range b.cols {
		t[c] = b.cols[c][lane]
	}
	return t
}

// ProjectCols narrows the view to the given column subset/reordering. No
// values move and lane numbering is unchanged: the columnar analogue of
// exec's free fused column projection.
func (b *Batch) ProjectCols(cols []int) {
	v := b.viewBuf[:0]
	for _, c := range cols {
		v = append(v, b.cols[c])
	}
	b.viewBuf = b.cols[:0]
	b.cols = v
}

// ProjectExprs computes one new column per expression over the live lanes
// and rebases the batch: output columns are dense and the selection vector
// resets to the identity over them. ColRef expressions compact the source
// column directly; everything else evaluates row-at-a-time for exact Expr
// parity.
func (b *Batch) ProjectExprs(exprs []plan.Expr) {
	live := len(b.sel)
	v := b.viewBuf[:0]
	for _, e := range exprs {
		col := b.grabCol(live)
		if cr, ok := e.(plan.ColRef); ok {
			src := b.cols[cr.Idx]
			for i, lane := range b.sel {
				col[i] = src[lane]
			}
		} else {
			for i, lane := range b.sel {
				col[i] = e.Eval(b.Row(lane))
			}
		}
		v = append(v, col)
	}
	b.viewBuf = b.cols[:0]
	b.cols = v
	b.n = live
	b.sel = b.sel[:live]
	for i := range b.sel {
		b.sel[i] = int32(i)
	}
}

// Filter keeps the lanes where pred is truthy, compacting the selection
// vector in place. Results are bit-identical to evaluating pred with
// plan.Expr.Eval per row.
func (b *Batch) Filter(pred plan.Expr) {
	if len(b.sel) == 0 {
		return
	}
	m := b.getMask(len(b.sel))
	b.evalMask(pred, m)
	out := b.sel[:0]
	for i, lane := range b.sel {
		if m[i] {
			out = append(out, lane)
		}
	}
	b.sel = out
	b.putMask(m)
}

// evalMask writes the boolean value of e for every live lane into m, which
// is indexed by selection-vector position.
func (b *Batch) evalMask(e plan.Expr, m []bool) {
	switch e := e.(type) {
	case plan.And:
		b.evalMask(e.L, m)
		t := b.getMask(len(m))
		b.evalMask(e.R, t)
		for i := range m {
			m[i] = m[i] && t[i]
		}
		b.putMask(t)
	case plan.Or:
		b.evalMask(e.L, m)
		t := b.getMask(len(m))
		b.evalMask(e.R, t)
		for i := range m {
			m[i] = m[i] || t[i]
		}
		b.putMask(t)
	case plan.Cmp:
		l, lok := simpleOperand(e.L)
		r, rok := simpleOperand(e.R)
		if lok && rok {
			b.cmpMask(e.Op, l, r, m)
			return
		}
		b.rowMask(e, m)
	default:
		b.rowMask(e, m)
	}
}

// rowMask is the exact-parity fallback: assemble each live lane into the
// scratch row and evaluate like the interpreter would.
func (b *Batch) rowMask(e plan.Expr, m []bool) {
	for i, lane := range b.sel {
		m[i] = plan.Truthy(e.Eval(b.Row(lane)))
	}
}

// operand is a comparison side that needs no per-lane tree walk: a column
// (col >= 0) or a constant.
type operand struct {
	col int
	v   storage.Value
}

func simpleOperand(e plan.Expr) (operand, bool) {
	switch e := e.(type) {
	case plan.ColRef:
		return operand{col: e.Idx}, true
	case plan.Const:
		return operand{col: -1, v: e.V}, true
	}
	return operand{col: -1}, false
}

func (o operand) value(b *Batch, lane int32) storage.Value {
	if o.col >= 0 {
		return b.cols[o.col][lane]
	}
	return o.v
}

// cmpMask is the columnar comparison kernel. It mirrors plan.Cmp.Eval
// exactly: same-kind operands compare via storage.Value.Compare, mixed
// kinds compare as floats.
func (b *Batch) cmpMask(op plan.CmpOp, l, r operand, m []bool) {
	for i, lane := range b.sel {
		lv := l.value(b, lane)
		rv := r.value(b, lane)
		var cv int
		if lv.Kind == rv.Kind {
			cv = lv.Compare(rv)
		} else {
			lf, rf := asFloat(lv), asFloat(rv)
			switch {
			case lf < rf:
				cv = -1
			case lf > rf:
				cv = 1
			}
		}
		m[i] = cmpHolds(op, cv)
	}
}

func asFloat(v storage.Value) float64 {
	if v.Kind == catalog.Float64 {
		return v.F
	}
	return float64(v.I)
}

func cmpHolds(op plan.CmpOp, cv int) bool {
	switch op {
	case plan.EQ:
		return cv == 0
	case plan.NE:
		return cv != 0
	case plan.LT:
		return cv < 0
	case plan.LE:
		return cv <= 0
	case plan.GT:
		return cv > 0
	default: // GE
		return cv >= 0
	}
}

// getMask hands out a scratch mask of n lanes from the batch's freelist.
// Every evaluation path writes all n positions, so masks are not cleared.
func (b *Batch) getMask(n int) []bool {
	if k := len(b.masks); k > 0 {
		m := b.masks[k-1]
		b.masks = b.masks[:k-1]
		if cap(m) < n {
			m = make([]bool, n)
		}
		return m[:n]
	}
	return make([]bool, n)
}

func (b *Batch) putMask(m []bool) { b.masks = append(b.masks, m) }
