package exec

import (
	"testing"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

// newTestDB builds a database with one "items" table (id, grp, val, name)
// loaded with n rows: id = i, grp = i % groups, val = float(i).
func newTestDB(t *testing.T, n, groups int) *engine.DB {
	t.Helper()
	db := engine.Open(catalog.DefaultKnobs())
	schema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "grp", Type: catalog.Int64},
		catalog.Column{Name: "val", Type: catalog.Float64},
		catalog.Column{Name: "name", Type: catalog.Varchar, Width: 12},
	)
	if _, err := db.CreateTable("items", schema); err != nil {
		t.Fatal(err)
	}
	rows := make([]storage.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = storage.Tuple{
			storage.NewInt(int64(i)),
			storage.NewInt(int64(i % groups)),
			storage.NewFloat(float64(i)),
			storage.NewString("name"),
		}
	}
	if err := db.BulkLoad("items", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

func testCtx(db *engine.DB) (*Ctx, *metrics.Collector) {
	col := metrics.NewCollector()
	ctx := &Ctx{
		DB:         db,
		Tracker:    metrics.NewTracker(col, hw.NewThread(hw.DefaultCPU())),
		Mode:       catalog.Interpret,
		Contenders: 1,
	}
	return ctx, col
}

func kindsOf(recs []metrics.Record) []ou.Kind {
	out := make([]ou.Kind, len(recs))
	for i, r := range recs {
		out[i] = r.Kind
	}
	return out
}

func TestSeqScanAll(t *testing.T) {
	db := newTestDB(t, 100, 10)
	ctx, col := testCtx(db)
	b, err := Execute(ctx, &plan.SeqScanNode{Table: "items"})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 100 || b.RowIDs == nil {
		t.Fatalf("scan returned %d rows, rowIDs=%v", len(b.Rows), b.RowIDs != nil)
	}
	recs := col.Drain()
	if len(recs) != 1 || recs[0].Kind != ou.SeqScan {
		t.Fatalf("OU records = %v", kindsOf(recs))
	}
	if recs[0].Features[0] != 100 {
		t.Fatalf("num_rows feature = %v", recs[0].Features[0])
	}
	if recs[0].Labels.ElapsedUS <= 0 {
		t.Fatal("labels must carry time")
	}
}

func TestSeqScanFilterEmitsArithmetic(t *testing.T) {
	db := newTestDB(t, 100, 10)
	ctx, col := testCtx(db)
	pred := plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(30)}
	b, err := Execute(ctx, &plan.SeqScanNode{Table: "items", Filter: pred})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 30 {
		t.Fatalf("filtered rows = %d, want 30", len(b.Rows))
	}
	recs := col.Drain()
	if len(recs) != 2 || recs[0].Kind != ou.SeqScan || recs[1].Kind != ou.Arithmetic {
		t.Fatalf("OU records = %v", kindsOf(recs))
	}
}

func TestSeqScanProject(t *testing.T) {
	db := newTestDB(t, 10, 2)
	ctx, _ := testCtx(db)
	b, err := Execute(ctx, &plan.SeqScanNode{Table: "items", Project: []int{2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows[0]) != 2 || b.Rows[3][1].I != 3 {
		t.Fatalf("projection wrong: %v", b.Rows[3])
	}
	if b.RowIDs != nil {
		t.Fatal("projection must drop row identities")
	}
}

func createIdx(t *testing.T, db *engine.DB, name string, cols []string) {
	t.Helper()
	if _, _, err := db.CreateIndex(nil, hw.DefaultCPU(), name, "items", cols, false, 2); err != nil {
		t.Fatal(err)
	}
}

func TestIdxScanPointAndRange(t *testing.T) {
	db := newTestDB(t, 1000, 10)
	createIdx(t, db, "items_id", []string{"id"})
	ctx, col := testCtx(db)

	b, err := Execute(ctx, &plan.IdxScanNode{
		Table: "items", Index: "items_id",
		Eq: []storage.Value{storage.NewInt(42)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 1 || b.Rows[0][0].I != 42 {
		t.Fatalf("point lookup = %v", b.Rows)
	}
	recs := col.Drain()
	if len(recs) != 1 || recs[0].Kind != ou.IdxScan {
		t.Fatalf("OU records = %v", kindsOf(recs))
	}

	b, err = Execute(ctx, &plan.IdxScanNode{
		Table: "items", Index: "items_id",
		Lo: []storage.Value{storage.NewInt(10)},
		Hi: []storage.Value{storage.NewInt(19)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 10 {
		t.Fatalf("range lookup = %d rows", len(b.Rows))
	}
}

func TestHashJoin(t *testing.T) {
	db := newTestDB(t, 100, 10)
	ctx, col := testCtx(db)
	// Self-join on grp: each row matches 10 rows → 1000 output rows.
	j := &plan.HashJoinNode{
		Left:      &plan.SeqScanNode{Table: "items"},
		Right:     &plan.SeqScanNode{Table: "items"},
		LeftKeys:  []int{1},
		RightKeys: []int{1},
	}
	b, err := Execute(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 1000 {
		t.Fatalf("join rows = %d, want 1000", len(b.Rows))
	}
	if len(b.Rows[0]) != 8 {
		t.Fatalf("joined width = %d", len(b.Rows[0]))
	}
	recs := col.Drain()
	want := []ou.Kind{ou.SeqScan, ou.SeqScan, ou.HashJoinBuild, ou.HashJoinProbe}
	got := kindsOf(recs)
	if len(got) != len(want) {
		t.Fatalf("OU records = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OU records = %v, want %v", got, want)
		}
	}
	// Build OU records the actual key cardinality.
	if recs[2].Features[3] != 10 {
		t.Fatalf("build cardinality = %v, want 10", recs[2].Features[3])
	}
}

func TestIndexJoin(t *testing.T) {
	db := newTestDB(t, 100, 10)
	createIdx(t, db, "items_grp", []string{"grp"})
	ctx, col := testCtx(db)
	j := &plan.IndexJoinNode{
		Outer:     &plan.SeqScanNode{Table: "items", Filter: plan.Cmp{Op: plan.LT, L: plan.Col(0), R: plan.IntConst(5)}},
		Table:     "items",
		Index:     "items_grp",
		OuterKeys: []int{1},
	}
	b, err := Execute(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 50 { // 5 outer rows x 10 matches each
		t.Fatalf("index join rows = %d, want 50", len(b.Rows))
	}
	var idxRec *metrics.Record
	for i, r := range col.Drain() {
		r := r
		if r.Kind == ou.IdxScan {
			idxRec = &r
			_ = i
		}
	}
	if idxRec == nil {
		t.Fatal("index join must emit IDX_SCAN")
	}
	if idxRec.Features[5] != 5 {
		t.Fatalf("loops feature = %v, want 5", idxRec.Features[5])
	}
}

func TestAggregation(t *testing.T) {
	db := newTestDB(t, 100, 10)
	ctx, col := testCtx(db)
	a := &plan.AggNode{
		Child:   &plan.SeqScanNode{Table: "items"},
		GroupBy: []int{1},
		Aggs: []plan.AggSpec{
			{Fn: plan.Count, Arg: plan.Col(0)},
			{Fn: plan.Sum, Arg: plan.Col(2)},
			{Fn: plan.Min, Arg: plan.Col(2)},
			{Fn: plan.Max, Arg: plan.Col(2)},
			{Fn: plan.Avg, Arg: plan.Col(2)},
		},
	}
	b, err := Execute(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 10 {
		t.Fatalf("groups = %d, want 10", len(b.Rows))
	}
	// Group 0 holds ids 0,10,...,90: count 10, sum 450, min 0, max 90, avg 45.
	for _, r := range b.Rows {
		if r[0].I == 0 {
			if r[1].I != 10 || r[2].F != 450 || r[3].F != 0 || r[4].F != 90 || r[5].F != 45 {
				t.Fatalf("group 0 aggs wrong: %v", r)
			}
		}
	}
	recs := kindsOf(col.Drain())
	if recs[len(recs)-2] != ou.AggBuild || recs[len(recs)-1] != ou.AggProbe {
		t.Fatalf("OU records = %v", recs)
	}
}

func TestSortAndLimit(t *testing.T) {
	db := newTestDB(t, 100, 10)
	ctx, col := testCtx(db)
	s := &plan.SortNode{
		Child: &plan.SeqScanNode{Table: "items"},
		Keys:  []plan.SortKey{{Col: 0, Desc: true}},
		Limit: 5,
	}
	b, err := Execute(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 5 || b.Rows[0][0].I != 99 || b.Rows[4][0].I != 95 {
		t.Fatalf("sort+limit wrong: %v", b.Rows)
	}
	recs := kindsOf(col.Drain())
	if recs[len(recs)-2] != ou.SortBuild || recs[len(recs)-1] != ou.SortIter {
		t.Fatalf("OU records = %v", recs)
	}
}

func TestProjectAndOutput(t *testing.T) {
	db := newTestDB(t, 10, 2)
	ctx, col := testCtx(db)
	p := &plan.OutputNode{Child: &plan.ProjectNode{
		Child: &plan.SeqScanNode{Table: "items"},
		Exprs: []plan.Expr{plan.Arith{Op: plan.Mul, L: plan.Col(0), R: plan.IntConst(2)}},
	}}
	b, err := Execute(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows[3][0].I != 6 {
		t.Fatalf("projection math wrong: %v", b.Rows[3])
	}
	recs := kindsOf(col.Drain())
	if recs[len(recs)-1] != ou.Output || recs[len(recs)-2] != ou.Arithmetic {
		t.Fatalf("OU records = %v", recs)
	}
}

func TestInsertUpdateDeleteLifecycle(t *testing.T) {
	db := newTestDB(t, 10, 2)
	createIdx(t, db, "items_id2", []string{"id"})
	ctx, col := testCtx(db)

	// INSERT
	ctx.Begin()
	_, err := Execute(ctx, &plan.InsertNode{Table: "items", Tuples: []storage.Tuple{
		{storage.NewInt(100), storage.NewInt(1), storage.NewFloat(1), storage.NewString("new")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Commit(); err != nil {
		t.Fatal(err)
	}

	probe := func() int {
		b, err := Execute(ctx, &plan.IdxScanNode{Table: "items", Index: "items_id2",
			Eq: []storage.Value{storage.NewInt(100)}})
		if err != nil {
			t.Fatal(err)
		}
		return len(b.Rows)
	}
	if probe() != 1 {
		t.Fatal("inserted row not visible via index")
	}

	// UPDATE via index scan child.
	ctx.Begin()
	_, err = Execute(ctx, &plan.UpdateNode{
		Child: &plan.IdxScanNode{Table: "items", Index: "items_id2",
			Eq: []storage.Value{storage.NewInt(100)}},
		Table:    "items",
		SetCols:  []int{2},
		SetExprs: []plan.Expr{plan.FloatConst(99)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Commit(); err != nil {
		t.Fatal(err)
	}
	b, _ := Execute(ctx, &plan.IdxScanNode{Table: "items", Index: "items_id2",
		Eq: []storage.Value{storage.NewInt(100)}})
	if b.Rows[0][2].F != 99 {
		t.Fatalf("update lost: %v", b.Rows[0])
	}

	// UPDATE that moves an index key.
	ctx.Begin()
	_, err = Execute(ctx, &plan.UpdateNode{
		Child: &plan.IdxScanNode{Table: "items", Index: "items_id2",
			Eq: []storage.Value{storage.NewInt(100)}},
		Table:    "items",
		SetCols:  []int{0},
		SetExprs: []plan.Expr{plan.IntConst(200)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Commit(); err != nil {
		t.Fatal(err)
	}
	if probe() != 0 {
		t.Fatal("old index key must be gone")
	}
	b, _ = Execute(ctx, &plan.IdxScanNode{Table: "items", Index: "items_id2",
		Eq: []storage.Value{storage.NewInt(200)}})
	if len(b.Rows) != 1 {
		t.Fatal("new index key missing")
	}

	// DELETE
	ctx.Begin()
	_, err = Execute(ctx, &plan.DeleteNode{
		Child: &plan.IdxScanNode{Table: "items", Index: "items_id2",
			Eq: []storage.Value{storage.NewInt(200)}},
		Table: "items",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Commit(); err != nil {
		t.Fatal(err)
	}
	b, _ = Execute(ctx, &plan.IdxScanNode{Table: "items", Index: "items_id2",
		Eq: []storage.Value{storage.NewInt(200)}})
	if len(b.Rows) != 0 {
		t.Fatal("deleted row still visible")
	}

	// The lifecycle must have produced INSERT/UPDATE/DELETE and txn OUs.
	seen := map[ou.Kind]bool{}
	for _, k := range kindsOf(col.Drain()) {
		seen[k] = true
	}
	for _, k := range []ou.Kind{ou.Insert, ou.Update, ou.Delete, ou.TxnBegin, ou.TxnCommit} {
		if !seen[k] {
			t.Errorf("missing OU %v in lifecycle", k)
		}
	}
}

func TestDMLWithoutTxnFails(t *testing.T) {
	db := newTestDB(t, 5, 1)
	ctx, _ := testCtx(db)
	if _, err := Execute(ctx, &plan.InsertNode{Table: "items"}); err == nil {
		t.Fatal("insert without txn must fail")
	}
}

func TestAbortRollsBackDML(t *testing.T) {
	db := newTestDB(t, 10, 2)
	ctx, _ := testCtx(db)
	ctx.Begin()
	_, err := Execute(ctx, &plan.UpdateNode{
		Child:    &plan.SeqScanNode{Table: "items", Filter: plan.Cmp{Op: plan.EQ, L: plan.Col(0), R: plan.IntConst(3)}},
		Table:    "items",
		SetCols:  []int{2},
		SetExprs: []plan.Expr{plan.FloatConst(-1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Abort(); err != nil {
		t.Fatal(err)
	}
	b, _ := Execute(ctx, &plan.SeqScanNode{Table: "items", Filter: plan.Cmp{Op: plan.EQ, L: plan.Col(0), R: plan.IntConst(3)}})
	if b.Rows[0][2].F != 3 {
		t.Fatalf("abort did not roll back: %v", b.Rows[0])
	}
}

func TestCompiledModeIsFaster(t *testing.T) {
	db := newTestDB(t, 5000, 10)
	run := func(mode catalog.ExecutionMode) float64 {
		ctx, col := testCtx(db)
		ctx.Mode = mode
		pred := plan.Cmp{Op: plan.LT, L: plan.Col(2), R: plan.FloatConst(2500)}
		if _, err := Execute(ctx, &plan.SeqScanNode{Table: "items", Filter: pred}); err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, r := range col.Drain() {
			total += r.Labels.ElapsedUS
		}
		return total
	}
	interp := run(catalog.Interpret)
	comp := run(catalog.Compile)
	if comp >= interp {
		t.Fatalf("compiled must be faster: %v vs %v", comp, interp)
	}
	if interp/comp < 1.3 {
		t.Fatalf("mode gap too small to model: %v", interp/comp)
	}
}

func TestBackgroundTasks(t *testing.T) {
	db := newTestDB(t, 50, 5)
	ctx, col := testCtx(db)

	// Generate write traffic.
	ctx.Begin()
	if _, err := Execute(ctx, &plan.UpdateNode{
		Child:    &plan.SeqScanNode{Table: "items"},
		Table:    "items",
		SetCols:  []int{2},
		SetExprs: []plan.Expr{plan.Arith{Op: plan.Add, L: plan.Col(2), R: plan.FloatConst(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Commit(); err != nil {
		t.Fatal(err)
	}

	ser := RunLogSerialize(ctx, 10000)
	if ser.Records != 51 { // 50 updates + 1 commit record
		t.Fatalf("serialized %d records", ser.Records)
	}
	fl, err := RunLogFlush(ctx, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Bytes <= 0 || fl.Blocks <= 0 {
		t.Fatalf("flush stats: %+v", fl)
	}
	gcStats := RunGC(ctx, 50000)
	if gcStats.VersionsPruned != 50 {
		t.Fatalf("GC pruned %d, want 50", gcStats.VersionsPruned)
	}

	seen := map[ou.Kind]int{}
	for _, k := range kindsOf(col.Drain()) {
		seen[k]++
	}
	for _, k := range []ou.Kind{ou.LogSerialize, ou.LogFlush, ou.GC} {
		if seen[k] != 1 {
			t.Errorf("OU %v recorded %d times", k, seen[k])
		}
	}
}

func TestWriteConflictSurfacesFromUpdate(t *testing.T) {
	db := newTestDB(t, 10, 2)
	ctx1, _ := testCtx(db)
	ctx2, _ := testCtx(db)
	target := plan.Cmp{Op: plan.EQ, L: plan.Col(0), R: plan.IntConst(1)}
	upd := func(v float64) *plan.UpdateNode {
		return &plan.UpdateNode{
			Child:    &plan.SeqScanNode{Table: "items", Filter: target},
			Table:    "items",
			SetCols:  []int{2},
			SetExprs: []plan.Expr{plan.FloatConst(v)},
		}
	}
	ctx1.Begin()
	ctx2.Begin()
	if _, err := Execute(ctx1, upd(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(ctx2, upd(2)); err == nil {
		t.Fatal("concurrent update must conflict")
	}
	if err := ctx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := ctx1.Commit(); err != nil {
		t.Fatal(err)
	}
}
