package exec_test

// Determinism and equivalence tests for partitioned parallel execution: the
// parallel operators must return the same result multiset as the serial
// path, must be bit-for-bit reproducible at any DOP, and their OU record
// streams must differ across DOP only in the dop feature — the contract
// that makes DOP a safely sweepable knob and a predictable action.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/exec"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

func newPartitionedDB(t *testing.T, parts, rows int) *engine.DB {
	t.Helper()
	knobs := catalog.DefaultKnobs()
	knobs.PartitionCount = parts
	db := engine.Open(knobs)
	schema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "grp", Type: catalog.Int64},
		catalog.Column{Name: "val", Type: catalog.Float64},
	)
	if _, err := db.CreateTable("part_items", schema); err != nil {
		t.Fatal(err)
	}
	dimSchema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.Int64},
		catalog.Column{Name: "name", Type: catalog.Varchar, Width: 12},
	)
	if _, err := db.CreateTable("part_dim", dimSchema); err != nil {
		t.Fatal(err)
	}
	tuples := make([]storage.Tuple, rows)
	for i := range tuples {
		tuples[i] = storage.Tuple{
			storage.NewInt(int64(i)),
			storage.NewInt(int64(i % 16)),
			storage.NewFloat(float64(i) * 1.5),
		}
	}
	if err := db.BulkLoad("part_items", tuples); err != nil {
		t.Fatal(err)
	}
	dims := make([]storage.Tuple, rows)
	for i := range dims {
		dims[i] = storage.Tuple{
			storage.NewInt(int64(i)),
			storage.NewString(fmt.Sprintf("d%03d", i%97)),
		}
	}
	if err := db.BulkLoad("part_dim", dims); err != nil {
		t.Fatal(err)
	}
	return db
}

func runScan(t *testing.T, db *engine.DB, dop int, mode catalog.ExecutionMode) (*exec.Batch, []metrics.Record) {
	t.Helper()
	col := metrics.NewCollector()
	ctx := &exec.Ctx{
		DB:      db,
		Tracker: metrics.NewTracker(col, hw.NewThread(hw.DefaultCPU())),
		Mode:    mode, Contenders: 1, DOP: dop,
	}
	pred := plan.Cmp{Op: plan.LT, L: plan.Col(1), R: plan.IntConst(8)}
	b, err := exec.Execute(ctx, &plan.SeqScanNode{Table: "part_items", Filter: pred})
	if err != nil {
		t.Fatal(err)
	}
	return b, col.Drain()
}

func runJoin(t *testing.T, db *engine.DB, dop int, mode catalog.ExecutionMode) (*exec.Batch, []metrics.Record) {
	t.Helper()
	col := metrics.NewCollector()
	ctx := &exec.Ctx{
		DB:      db,
		Tracker: metrics.NewTracker(col, hw.NewThread(hw.DefaultCPU())),
		Mode:    mode, Contenders: 1, DOP: dop,
	}
	q := &plan.HashJoinNode{
		Left:      &plan.SeqScanNode{Table: "part_dim"},
		Right:     &plan.SeqScanNode{Table: "part_items"},
		LeftKeys:  []int{0},
		RightKeys: []int{0},
	}
	b, err := exec.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	return b, col.Drain()
}

func rowStrings(b *exec.Batch) []string {
	out := make([]string, len(b.Rows))
	for i, r := range b.Rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	return out
}

func sortedCopy(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

// TestParallelScanMatchesSerial: the partitioned scan must return exactly
// the rows the unpartitioned scan returns.
func TestParallelScanMatchesSerial(t *testing.T) {
	const rows = 3000
	serialDB := newPartitionedDB(t, 1, rows)
	partDB := newPartitionedDB(t, 4, rows)
	want, serialRecs := runScan(t, serialDB, 1, catalog.Interpret)
	for _, k := range []ou.Kind{ou.SeqScan, ou.Arithmetic} {
		found := false
		for _, r := range serialRecs {
			if r.Kind == k {
				found = true
			}
		}
		if !found {
			t.Fatalf("serial path must emit %v", k)
		}
	}
	for _, dop := range []int{1, 2, 4} {
		got, recs := runScan(t, partDB, dop, catalog.Interpret)
		if !reflect.DeepEqual(sortedCopy(rowStrings(got)), sortedCopy(rowStrings(want))) {
			t.Fatalf("dop=%d: result multiset differs from serial scan", dop)
		}
		var kinds []ou.Kind
		for _, r := range recs {
			kinds = append(kinds, r.Kind)
		}
		wantKinds := []ou.Kind{ou.ParallelScan, ou.ParallelScan, ou.ParallelScan, ou.ParallelScan,
			ou.ExchangeMerge, ou.Arithmetic}
		if !reflect.DeepEqual(kinds, wantKinds) {
			t.Fatalf("dop=%d: OU stream %v, want %v", dop, kinds, wantKinds)
		}
	}
}

// TestParallelScanDeterministicAcrossDOPAndRuns: for each DOP the execution
// must be bit-for-bit reproducible, the merged row ORDER must be invariant
// across DOP (it depends only on the partition directory), and per-partition
// records must differ across DOP only in the dop feature.
func TestParallelScanDeterministicAcrossDOPAndRuns(t *testing.T) {
	const rows = 2000
	db := newPartitionedDB(t, 4, rows)

	type run struct {
		rows []string
		recs []metrics.Record
	}
	byDOP := map[int]run{}
	for _, dop := range []int{1, 2, 4} {
		first, firstRecs := runScan(t, db, dop, catalog.Compile)
		for rep := 0; rep < 5; rep++ {
			again, againRecs := runScan(t, db, dop, catalog.Compile)
			if !reflect.DeepEqual(rowStrings(again), rowStrings(first)) {
				t.Fatalf("dop=%d rep=%d: row order not reproducible", dop, rep)
			}
			if !reflect.DeepEqual(againRecs, firstRecs) {
				t.Fatalf("dop=%d rep=%d: OU records not bit-identical across runs", dop, rep)
			}
		}
		byDOP[dop] = run{rows: rowStrings(first), recs: firstRecs}
	}
	base := byDOP[1]
	dopFeat := -1
	for i, name := range ou.Get(ou.ParallelScan).FeatureNames {
		if name == "dop" {
			dopFeat = i
		}
	}
	for _, dop := range []int{2, 4} {
		r := byDOP[dop]
		if !reflect.DeepEqual(r.rows, base.rows) {
			t.Fatalf("dop=%d: merged row order differs from dop=1", dop)
		}
		if len(r.recs) != len(base.recs) {
			t.Fatalf("dop=%d: %d records vs %d at dop=1", dop, len(r.recs), len(base.recs))
		}
		for i, rec := range r.recs {
			if rec.Kind != base.recs[i].Kind {
				t.Fatalf("dop=%d: record %d kind %v vs %v", dop, i, rec.Kind, base.recs[i].Kind)
			}
			if rec.Kind != ou.ParallelScan {
				continue
			}
			if rec.Labels != base.recs[i].Labels {
				t.Fatalf("dop=%d: record %d labels differ across DOP", dop, i)
			}
			for j, f := range rec.Features {
				if j == dopFeat {
					if f != float64(dop) {
						t.Fatalf("dop=%d: record %d dop feature = %v", dop, i, f)
					}
					continue
				}
				if f != base.recs[i].Features[j] {
					t.Fatalf("dop=%d: record %d feature %d differs: %v vs %v",
						dop, i, j, f, base.recs[i].Features[j])
				}
			}
		}
	}
}

// TestPartitionJoinMatchesSerial: the partition-wise join must produce the
// serial hash join's exact result multiset and a deterministic stream of
// one PARTITION_PROBE per partition plus the exchange merge.
func TestPartitionJoinMatchesSerial(t *testing.T) {
	const rows = 1500
	serialDB := newPartitionedDB(t, 1, rows)
	partDB := newPartitionedDB(t, 4, rows)
	want, _ := runJoin(t, serialDB, 1, catalog.Interpret)
	for _, dop := range []int{1, 2, 4} {
		got, recs := runJoin(t, partDB, dop, catalog.Interpret)
		if !reflect.DeepEqual(sortedCopy(rowStrings(got)), sortedCopy(rowStrings(want))) {
			t.Fatalf("dop=%d: join multiset differs from serial", dop)
		}
		var kinds []ou.Kind
		for _, r := range recs {
			kinds = append(kinds, r.Kind)
		}
		wantKinds := []ou.Kind{ou.PartitionProbe, ou.PartitionProbe, ou.PartitionProbe,
			ou.PartitionProbe, ou.ExchangeMerge}
		if !reflect.DeepEqual(kinds, wantKinds) {
			t.Fatalf("dop=%d: OU stream %v, want %v", dop, kinds, wantKinds)
		}
		again, againRecs := runJoin(t, partDB, dop, catalog.Interpret)
		if !reflect.DeepEqual(rowStrings(again), rowStrings(got)) || !reflect.DeepEqual(againRecs, recs) {
			t.Fatalf("dop=%d: partition-wise join not reproducible", dop)
		}
	}
}

// TestParallelScanElapsedReflectsCriticalPath: the session thread absorbs
// only the slowest chain, so the whole-operator elapsed time must shrink
// when DOP grows (simulated wall clock, not host wall clock).
func TestParallelScanElapsedReflectsCriticalPath(t *testing.T) {
	const rows = 4000
	db := newPartitionedDB(t, 8, rows)
	elapsed := map[int]float64{}
	for _, dop := range []int{1, 4} {
		ctx := exec.NewCtx(db, hw.DefaultCPU())
		ctx.DOP = dop
		start := ctx.Thread().Counters()
		if _, err := exec.Execute(ctx, &plan.SeqScanNode{Table: "part_items"}); err != nil {
			t.Fatal(err)
		}
		elapsed[dop] = ctx.Thread().Since(start).ElapsedUS
	}
	if elapsed[4] >= elapsed[1] {
		t.Fatalf("dop=4 elapsed %.1fus not below dop=1 %.1fus: critical-path absorption broken",
			elapsed[4], elapsed[1])
	}
	if elapsed[4] < elapsed[1]/8 {
		t.Fatalf("dop=4 elapsed %.1fus implausibly below dop=1 %.1fus", elapsed[4], elapsed[1])
	}
}
