package exec

import (
	"bytes"
	"fmt"

	"mb2/internal/index"
	"mb2/internal/ou"
	"mb2/internal/plan"
	"mb2/internal/storage"
)

// Fused streaming pipelines: the compiled-mode execution path.
//
// In compiled mode a scan-rooted chain (scan → filter → project) runs as a
// single pass: each tuple flows through every stage before the next is
// produced, with no intermediate Batch materialization, and hash/index
// join probes stream straight from their source into the join output. The
// interpreted path keeps the operator-at-a-time shape in relational.go.
//
// The modeled-cost contract is strict: a fused pipeline emits exactly the
// OU records — same kinds, same order, same feature vectors — that the
// operator-at-a-time path emits for the same plan, so models trained on
// either path stay valid for both. Real work (predicate evaluation, output
// construction) happens in the single pass; modeled charges whose
// operator-at-a-time placement would interleave across OU brackets are
// replayed afterwards, bracket by bracket, from counts and width samples
// collected during the pass. Labels therefore agree to float-rounding
// (bulk n-item charges versus n single-item charges); features agree
// bit-for-bit. The equivalence property test in equivalence_test.go pins
// this down across the SmallBank/TATP/TPC-H template matrix.

// execFusedScan runs a fusable scan chain and materializes its output.
func execFusedScan(ctx *Ctx, p *plan.ScanPipeline) (*Batch, error) {
	ctx.FusedPipelines++
	est := capHint(p.Source.Est().Rows)
	rows := make([]storage.Tuple, 0, est)
	keepIDs := p.HasRowIDs()
	var rowIDs []storage.RowID
	if keepIDs {
		rowIDs = make([]storage.RowID, 0, est)
	}
	err := runScanPipeline(ctx, p, func(r storage.RowID, t storage.Tuple) {
		rows = append(rows, t)
		if keepIDs {
			rowIDs = append(rowIDs, r)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Batch{Rows: rows, RowIDs: rowIDs}, nil
}

// rowProc is the per-tuple stage machine of one fused pass: it applies the
// source's own filter/projection and every wrapper stage, recording the
// per-stage row counts and input widths the OU replay needs.
type rowProc struct {
	ctx        *Ctx
	stages     []plan.PipelineStage
	srcFilter  plan.Expr
	srcProject []int

	rows        int     // rows entering the pipeline (source output)
	srcWidths   *[]int  // widths before the source's own filter (nil if none)
	stageRows   []int   // input row count per wrapper stage
	stageWidths []*[]int

	sink func(storage.RowID, storage.Tuple)
}

func newRowProc(ctx *Ctx, p *plan.ScanPipeline, sink func(storage.RowID, storage.Tuple)) *rowProc {
	rp := &rowProc{ctx: ctx, stages: p.Stages, sink: sink}
	switch s := p.Source.(type) {
	case *plan.SeqScanNode:
		rp.srcFilter, rp.srcProject = s.Filter, s.Project
	case *plan.IdxScanNode:
		rp.srcFilter, rp.srcProject = s.Filter, s.Project
	}
	if rp.srcFilter != nil {
		rp.srcWidths = getIntBuf()
	}
	if len(p.Stages) > 0 {
		rp.stageRows = make([]int, len(p.Stages))
		rp.stageWidths = make([]*[]int, len(p.Stages))
		for i := range p.Stages {
			rp.stageWidths[i] = getIntBuf()
		}
	}
	return rp
}

// release returns the pooled width buffers.
func (rp *rowProc) release() {
	if rp.srcWidths != nil {
		putIntBuf(rp.srcWidths)
		rp.srcWidths = nil
	}
	for i, w := range rp.stageWidths {
		if w != nil {
			putIntBuf(w)
			rp.stageWidths[i] = nil
		}
	}
}

// process pushes one source row through the fused stages.
func (rp *rowProc) process(rid storage.RowID, t storage.Tuple) {
	rp.rows++
	if rp.srcFilter != nil {
		*rp.srcWidths = append(*rp.srcWidths, t.Bytes())
		if !plan.Truthy(rp.srcFilter.Eval(t)) {
			return
		}
	}
	if rp.srcProject != nil {
		t = rp.ctx.arena.projectCols(t, rp.srcProject)
	}
	for i := range rp.stages {
		st := &rp.stages[i]
		rp.stageRows[i]++
		*rp.stageWidths[i] = append(*rp.stageWidths[i], t.Bytes())
		if st.Pred != nil {
			if !plan.Truthy(st.Pred.Eval(t)) {
				return
			}
		} else {
			out := rp.ctx.arena.alloc(len(st.Exprs))
			for j, e := range st.Exprs {
				out[j] = e.Eval(t)
			}
			t = out
		}
	}
	rp.sink(rid, t)
}

// replayStages emits the Arithmetic OU bracket for the source's own filter
// and for every wrapper stage, charging exactly what applyFilter and
// execProject would have charged over the materialized intermediates.
func (rp *rowProc) replayStages() {
	ctx := rp.ctx
	if rp.srcFilter != nil {
		replayFilter(ctx, rp.rows, *rp.srcWidths, rp.srcFilter)
	}
	for i := range rp.stages {
		st := &rp.stages[i]
		if st.Pred != nil {
			replayFilter(ctx, rp.stageRows[i], *rp.stageWidths[i], st.Pred)
		} else {
			replayProject(ctx, rp.stageRows[i], *rp.stageWidths[i], st.Exprs)
		}
	}
}

// replayFilter mirrors applyFilter's charges and OU record.
func replayFilter(ctx *Ctx, nrows int, widths []int, pred plan.Expr) {
	start := ctx.Tracker.Start()
	ops := float64(nrows) * pred.Ops()
	ctx.Thread().SeqRead(float64(nrows), sampledWidth(widths))
	ctx.compute(ops * 2)
	ctx.Tracker.Stop(ou.Arithmetic, ou.ArithmeticFeatures(ops, ctx.compiled()), start)
}

// replayProject mirrors execProject's charges and OU record.
func replayProject(ctx *Ctx, nrows int, widths []int, exprs []plan.Expr) {
	start := ctx.Tracker.Start()
	opsPerRow := 0.0
	for _, e := range exprs {
		opsPerRow += e.Ops()
	}
	ops := float64(nrows) * opsPerRow
	ctx.Thread().SeqRead(float64(nrows), sampledWidth(widths))
	ctx.compute(ops * 2)
	ctx.Tracker.Stop(ou.Arithmetic, ou.ArithmeticFeatures(ops, ctx.compiled()), start)
}

// runScanPipeline drives one fused pass over the pipeline's source, feeding
// every surviving row to sink, then emits the pipeline's OU records in
// operator-at-a-time order.
func runScanPipeline(ctx *Ctx, p *plan.ScanPipeline, sink func(storage.RowID, storage.Tuple)) error {
	rp := newRowProc(ctx, p, sink)
	defer rp.release()
	var err error
	switch src := p.Source.(type) {
	case *plan.SeqScanNode:
		err = runSeqSource(ctx, rp, src)
	case *plan.IdxScanNode:
		err = runIdxSource(ctx, rp, src)
	default:
		err = fmt.Errorf("exec: unsupported pipeline source %T", p.Source)
	}
	if err != nil {
		return err
	}
	rp.replayStages()
	return nil
}

// runSeqSource streams the table through the pipeline inside the SeqScan OU
// bracket, using a pooled scan-row buffer (zero per-row allocation).
func runSeqSource(ctx *Ctx, rp *rowProc, n *plan.SeqScanNode) error {
	tbl := ctx.DB.Table(n.Table)
	if tbl == nil {
		return fmt.Errorf("exec: table %q does not exist", n.Table)
	}
	id, ts := ctx.snapshot()

	start := ctx.Tracker.Start()
	buf := getScanBuf()
	tbl.ScanBatch(ctx.Thread(), id, ts, *buf, func(rows []storage.ScanRow) bool {
		for i := range rows {
			rp.process(rows[i].Row, rows[i].Data)
		}
		return true
	})
	putScanBuf(buf)
	scanned := float64(rp.rows)
	ctx.compute(scanned * 6)
	width := float64(tbl.Meta.Schema.TupleBytes())
	cols := float64(tbl.Meta.Schema.NumColumns())
	if n.Filter == nil && n.Project != nil {
		ctx.compute(scanned * float64(len(n.Project)) * 2)
	}
	feats := ou.ExecFeatures(scanned, cols, width, 0, 0, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.SeqScan, feats, start)
	return nil
}

// runIdxSource streams index matches through the pipeline inside the
// IdxScan OU bracket. Row IDs collect into a pooled buffer (point lookups
// go through the copy-free SearchEQFunc path) and version reads stream
// straight into the stage machine.
func runIdxSource(ctx *Ctx, rp *rowProc, n *plan.IdxScanNode) error {
	tbl := ctx.DB.Table(n.Table)
	idx := ctx.DB.Index(n.Index)
	if tbl == nil || idx == nil {
		return fmt.Errorf("exec: missing table %q or index %q", n.Table, n.Index)
	}
	id, ts := ctx.snapshot()
	loops := n.Loops
	if loops < 1 {
		loops = 1
	}

	start := ctx.Tracker.Start()
	rowBuf := getRowIDBuf()
	ids := *rowBuf
	if n.Eq != nil {
		idx.SearchEQFunc(ctx.Thread(), index.EncodeKey(n.Eq...), loops, func(r storage.RowID) bool {
			ids = append(ids, r)
			return true
		})
	} else {
		var lo, hi index.Key
		if n.Lo != nil {
			lo = index.EncodeKey(n.Lo...)
		}
		if n.Hi != nil {
			hi = index.EncodeKey(n.Hi...)
		}
		idx.SearchRange(ctx.Thread(), lo, hi, func(_ index.Key, r storage.RowID) bool {
			ids = append(ids, r)
			return true
		})
	}
	for _, r := range ids {
		t, err := tbl.Read(ctx.Thread(), r, id, ts)
		if err != nil {
			continue // version not visible at this snapshot
		}
		rp.process(r, t)
	}
	*rowBuf = ids
	putRowIDBuf(rowBuf)

	matched := float64(rp.rows)
	ctx.compute(matched * 8)
	width := float64(tbl.Meta.Schema.TupleBytes())
	cols := float64(tbl.Meta.Schema.NumColumns())
	if n.Filter == nil && n.Project != nil {
		ctx.compute(matched * float64(len(n.Project)) * 2)
	}
	feats := ou.ExecFeatures(matched, cols, width, float64(idx.NumRows()), 0, loops, ctx.compiled())
	ctx.Tracker.Stop(ou.IdxScan, feats, start)
	return nil
}

// joinTable is the fused hash join's build structure: chained hashing with
// all entries in one flat slice and all key bytes in one arena, reused
// build-to-build on the same Ctx. A steady-state build therefore performs
// zero allocations — the map[string] build of the operator-at-a-time path
// still pays one string per distinct key. Chains keep insertion order, so
// probes emit matches in build-row order exactly like the unfused path.
type joinTable struct {
	heads    []int32 // bucket → first entry, -1 empty
	entries  []joinEntry
	keys     []byte // concatenated key bytes of every entry
	distinct int
}

type joinEntry struct {
	off  int32
	klen int32
	row  int32
	next int32 // next entry in the same bucket, insertion order
}

// reset prepares the table for a build of n rows.
func (t *joinTable) reset(n int) {
	size := 1
	for size < 2*n {
		size <<= 1
	}
	if cap(t.heads) >= size {
		t.heads = t.heads[:size]
	} else {
		t.heads = make([]int32, size)
	}
	for i := range t.heads {
		t.heads[i] = -1
	}
	t.entries = t.entries[:0]
	t.keys = t.keys[:0]
	t.distinct = 0
}

// hashKey is FNV-1a over the key bytes.
func hashKey(k []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range k {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

func (t *joinTable) key(e *joinEntry) []byte {
	return t.keys[e.off : e.off+e.klen]
}

// insert appends a build row under k (copied into the key arena).
func (t *joinTable) insert(k []byte, row int32) {
	h := int(hashKey(k)) & (len(t.heads) - 1)
	idx := int32(len(t.entries))
	off := int32(len(t.keys))
	t.keys = append(t.keys, k...)
	t.entries = append(t.entries, joinEntry{off: off, klen: int32(len(k)), row: row, next: -1})
	e := t.heads[h]
	if e < 0 {
		t.heads[h] = idx
		t.distinct++
		return
	}
	// Walk to the chain tail; note on the way whether the key repeats.
	seen := false
	for {
		ent := &t.entries[e]
		if !seen && ent.klen == int32(len(k)) && bytes.Equal(t.key(ent), k) {
			seen = true
		}
		if ent.next < 0 {
			ent.next = idx
			break
		}
		e = ent.next
	}
	if !seen {
		t.distinct++
	}
}

// probe calls fn for every build row stored under k, in insertion order.
func (t *joinTable) probe(k []byte, fn func(row int32)) {
	h := int(hashKey(k)) & (len(t.heads) - 1)
	for e := t.heads[h]; e >= 0; {
		ent := &t.entries[e]
		if ent.klen == int32(len(k)) && bytes.Equal(t.key(ent), k) {
			fn(ent.row)
		}
		e = ent.next
	}
}

// execHashJoinFused is the compiled-mode hash join: the build side
// materializes (it must), the probe side streams — when the right child is
// a fusable scan chain, its rows flow from the storage layer through the
// probe into the join output in one pass with no intermediate Batch. Keys
// are encoded into the worker's scratch buffer; the build goes into the
// Ctx-reused joinTable, so the steady-state hot path allocates nothing per
// row. Output tuples come from the context arena.
func execHashJoinFused(ctx *Ctx, n *plan.HashJoinNode) (*Batch, error) {
	left, err := Execute(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	ctx.FusedPipelines++

	// Real build, charges replayed in the build bracket below.
	jt := &ctx.jt
	jt.reset(len(left.Rows))
	for i, r := range left.Rows {
		ctx.keyBuf = index.AppendKeyFromTuple(ctx.keyBuf[:0], r, n.LeftKeys)
		jt.insert(ctx.keyBuf, int32(i))
	}

	// Real probe: stream the right side.
	rightWidths := getIntBuf()
	defer putIntBuf(rightWidths)
	rightRows, rightCols := 0, 0
	out := make([]storage.Tuple, 0, capHint(n.Rows.Rows))
	var cur storage.Tuple
	emit := func(row int32) {
		out = append(out, ctx.arena.join(left.Rows[row], cur))
	}
	probe := func(_ storage.RowID, r storage.Tuple) {
		rightRows++
		if rightRows == 1 {
			rightCols = len(r)
		}
		*rightWidths = append(*rightWidths, r.Bytes())
		ctx.keyBuf = index.AppendKeyFromTuple(ctx.keyBuf[:0], r, n.RightKeys)
		cur = r
		jt.probe(ctx.keyBuf, emit)
	}
	if rp := plan.FuseScan(n.Right); rp != nil {
		// The probe-side pipeline's OU records (scan + stages) emit here,
		// before the build/probe brackets — operator-at-a-time order.
		if err := runScanPipeline(ctx, rp, probe); err != nil {
			return nil, err
		}
	} else {
		right, err := Execute(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		for _, r := range right.Rows {
			probe(0, r)
		}
	}

	// Build bracket replay.
	buildRows := float64(len(left.Rows))
	keyBytes := 8.0 * float64(len(n.LeftKeys))
	entryBytes := keyBytes + 8 + 16
	htBytes := buildRows * entryBytes

	start := ctx.Tracker.Start()
	ctx.Thread().Alloc(htBytes) // join hash tables pre-allocate (Sec 4.3)
	nb := len(left.Rows)
	ctx.compute(10 * float64(nb))
	ctx.Thread().RandWrite(float64(nb), htBytes)
	if ctx.JHTSleepEvery > 0 && nb > 0 {
		ctx.Thread().Sleep(float64((nb-1)/ctx.JHTSleepEvery + 1))
	}
	card := float64(jt.distinct)
	leftW := left.AvgWidth()
	buildFeats := ou.ExecFeatures(buildRows, left.NumCols(), leftW, card, entryBytes, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.HashJoinBuild, buildFeats, start)

	// Probe bracket replay.
	start = ctx.Tracker.Start()
	ctx.compute(10 * float64(rightRows))
	ctx.Thread().RandRead(float64(rightRows), htBytes, 1)
	outRows := float64(len(out))
	rightW := sampledWidth(*rightWidths)
	ctx.Thread().SeqWrite(outRows, leftW+rightW)
	probeFeats := ou.ExecFeatures(float64(rightRows)+outRows, float64(rightCols), rightW,
		card, leftW+rightW, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.HashJoinProbe, probeFeats, start)

	ctx.Thread().Free(htBytes) // the hash table is query-lifetime scratch
	return &Batch{Rows: out}, nil
}

// capHint converts an optimizer row estimate into a sane preallocation
// capacity.
func capHint(est float64) int {
	if est < 16 {
		return 16
	}
	if est > 1<<20 {
		return 1 << 20
	}
	return int(est)
}
