// Package exec implements the execution engine: materialized operators for
// every execution OU in Table 1, DML with index maintenance and logging,
// transaction OUs, and the background maintenance tasks (GC, WAL). Every
// operator brackets its work with the metrics tracker so training runs
// produce (feature, label) records per OU invocation.
package exec

import (
	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/txn"
)

// interpretFactor is the per-tuple instruction overhead of the bytecode
// interpreter relative to JIT-compiled pipelines. Memory traffic is
// unaffected; only operator logic pays it.
const interpretFactor = 2.8

// Ctx carries everything one worker needs to execute plans.
type Ctx struct {
	DB      *engine.DB
	Tracker *metrics.Tracker
	Txn     *txn.Txn
	Mode    catalog.ExecutionMode

	// Contenders is the number of worker threads concurrently mutating
	// shared structures (latch-charge scaling).
	Contenders float64

	// DOP is the degree of parallelism for partitioned operators: the
	// number of worker chains partition scans and partition-wise joins fan
	// out over (parallel.go). Values <= 1 run partitions on one chain;
	// unpartitioned tables ignore it entirely. It is a knob
	// (catalog.Knobs.ScanDOP) and a self-driving action.
	DOP int
	// TxnRate is the transaction arrival rate in the current forecast
	// interval: the contending txn OUs' feature (Sec 4.2).
	TxnRate float64

	// JHTSleepEvery injects a 1us sleep every N tuples into the join
	// hash-table build: the simulated software update of the adaptation
	// experiment (Sec 8.5). Zero disables it.
	JHTSleepEvery int

	// Observer, when set, receives one event per query executed through
	// ExecuteObserved: the live-path metrics stream feeding the online
	// control loop (template counts for forecasting, observed resource
	// usage for predicted-vs-actual accounting).
	Observer QueryObserver

	// Interrupt, when set, is polled at every operator boundary; a non-nil
	// return aborts the plan with that error before the next operator runs.
	// The session layer points it at the session context so a process-list
	// kill lands mid-query instead of after the statement finishes. The
	// poll itself charges nothing, so queries that complete are bit-for-bit
	// identical whether or not an interrupt hook is installed.
	Interrupt func() error

	// DisableFusion forces compiled-mode plans through the
	// operator-at-a-time path. It exists for the fused/unfused equivalence
	// tests and for isolating regressions; production compiled execution
	// always fuses.
	DisableFusion bool

	// FusedPipelines counts pipelines this context executed on the fused
	// path (one scan chain, hash join, or index join each), for
	// observability in the control loop and CLIs.
	FusedPipelines int

	// VecBatches counts column-major batches this context processed on the
	// vectorized path (vectorized.go): the vec-mode analogue of
	// FusedPipelines, for observability in the control loop and CLIs.
	VecBatches int

	// keyBuf is the worker-private scratch buffer join probes and DML
	// index maintenance encode transient keys into. A Ctx is single-worker
	// by contract, so reuse needs no synchronization. Never handed to
	// anything that retains keys (B+tree inserts get fresh allocations).
	keyBuf []byte

	// arena backs projected and joined output tuples (see pool.go).
	arena valueArena

	// jt is the fused hash join's build table, reused build-to-build so
	// steady-state builds allocate nothing (see pipeline.go).
	jt joinTable
}

// NewCtx builds a context with a fresh collector-less tracker on the given
// CPU — convenient for tests and loaders.
func NewCtx(db *engine.DB, cpu hw.CPU) *Ctx {
	return &Ctx{
		DB:         db,
		Tracker:    metrics.NewTracker(nil, hw.NewThread(cpu)),
		Mode:       db.Knobs().ExecutionMode,
		Contenders: 1,
	}
}

// Thread returns the worker's hardware thread.
func (c *Ctx) Thread() *hw.Thread { return c.Tracker.Thread() }

func (c *Ctx) compiled() bool { return c.Mode == catalog.Compile }

// fused reports whether this worker runs compiled plans as fused pipelines.
func (c *Ctx) fused() bool { return c.compiled() && !c.DisableFusion }

// compute charges operator logic, scaled by the execution mode.
func (c *Ctx) compute(n float64) {
	if !c.compiled() {
		n *= interpretFactor
	}
	c.Thread().Compute(n)
}

// vecCompute charges vectorized-kernel logic. Unlike compute it never pays
// the interpreter factor: batch kernels amortize dispatch across lanes, so
// their per-tuple cost is a property of the kernel, not of the mode's
// interpreter. Only the VEC_* OU brackets use it.
func (c *Ctx) vecCompute(n float64) { c.Thread().Compute(n) }

// snapshot returns the worker's visibility pair. With no open transaction
// it reads the latest committed state.
func (c *Ctx) snapshot() (txnID, readTS uint64) {
	if c.Txn != nil {
		return c.Txn.ID, c.Txn.ReadTS
	}
	return 0, c.DB.Txns.LastCommitTS()
}

// Begin opens a transaction on the context, recording the TXN_BEGIN OU.
func (c *Ctx) Begin() *txn.Txn {
	start := c.Tracker.Start()
	t := c.DB.Txns.Begin(c.Thread())
	feats := ou.TxnFeatures(c.TxnRate, float64(c.DB.Txns.ActiveCount()))
	c.Tracker.Stop(ou.TxnBegin, feats, start)
	c.Txn = t
	return t
}

// Commit commits the context's transaction, recording the TXN_COMMIT OU.
// The commit record reaches the WAL through the engine's ordered commit
// path, so the log's commit order matches commit-timestamp order.
func (c *Ctx) Commit() error {
	start := c.Tracker.Start()
	active := float64(c.DB.Txns.ActiveCount())
	_, err := c.DB.CommitLogged(c.Txn, c.Thread())
	feats := ou.TxnFeatures(c.TxnRate, active)
	c.Tracker.Stop(ou.TxnCommit, feats, start)
	c.Txn = nil
	return err
}

// Abort rolls the context's transaction back (no OU: the paper does not
// model aborts, Sec 3).
func (c *Ctx) Abort() error {
	err := c.Txn.Abort(c.Thread())
	c.Txn = nil
	return err
}
