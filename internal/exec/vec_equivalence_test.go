package exec_test

// Vectorized-mode equivalence property test: across the same seeded
// SmallBank/TATP/TPC-H template matrix as the fused/unfused test,
// vectorized execution must return result multisets bit-identical to the
// interpreted path. Unlike the fused path, the vectorized OU stream is NOT
// record-equivalent to the interpreted one — VEC_SCAN/VEC_FILTER/VEC_PROBE
// are separate OU kinds with their own models — so this test checks the
// result contract plus the shape of the vec OU stream: vectorizable chains
// emit VEC_* records, everything else falls back to interpreted-flagged
// operator records.

import (
	"fmt"
	"testing"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/exec"
	"mb2/internal/hw"
	"mb2/internal/metrics"
	"mb2/internal/ou"
	"mb2/internal/workload"
)

func TestVectorizedInterpretedEquivalence(t *testing.T) {
	// wantVec marks benchmarks whose templates contain vectorizable shapes
	// (scan-rooted chains / hash joins): SmallBank and TATP are pure
	// index-lookup + DML workloads, so every query there falls back — the
	// equivalence contract still holds, just with zero batches.
	cases := []struct {
		bench   workload.Benchmark
		scale   float64
		wantVec bool
	}{
		{workload.SmallBank{}, 0.05, false},
		{workload.TATP{}, 0.05, false},
		{workload.TPCH{}, 0.02, true},
	}
	seeds := []int64{1, 7}

	for _, tc := range cases {
		for _, seed := range seeds {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s/seed%d", tc.bench.Name(), seed), func(t *testing.T) {
				t.Parallel()
				db := engine.Open(catalog.DefaultKnobs())
				if err := tc.bench.Load(db, tc.scale, seed); err != nil {
					t.Fatal(err)
				}
				templates := tc.bench.Templates(db, seed)
				if len(templates) == 0 {
					t.Fatal("no templates")
				}

				totalBatches, totalVecRecs := 0, 0
				for _, q := range templates {
					run := func(mode catalog.ExecutionMode) (*exec.Batch, []metrics.Record, int) {
						col := metrics.NewCollector()
						ctx := &exec.Ctx{
							DB:         db,
							Tracker:    metrics.NewTracker(col, hw.NewThread(hw.DefaultCPU())),
							Mode:       mode,
							Contenders: 1,
						}
						b, err := exec.Execute(ctx, q.Plan)
						if err != nil {
							t.Fatalf("%v/%s: %v", mode, q.Name, err)
						}
						return b, col.Drain(), ctx.VecBatches
					}
					ib, _, ivb := run(catalog.Interpret)
					vb, vrecs, vvb := run(catalog.Vectorize)
					if ivb != 0 {
						t.Errorf("%s: interpreted mode processed %d vec batches", q.Name, ivb)
					}
					totalBatches += vvb

					irows, vrows := canonRows(ib), canonRows(vb)
					if len(irows) != len(vrows) {
						t.Fatalf("%s: vectorized returned %d rows, interpreted %d",
							q.Name, len(vrows), len(irows))
					}
					for k := range irows {
						if irows[k] != vrows[k] {
							t.Fatalf("%s: row %d vectorized = %s, interpreted = %s",
								q.Name, k, vrows[k], irows[k])
						}
					}

					// The vec OU stream: every VEC_* record belongs to vec
					// mode only, and non-VEC execution records must carry the
					// interpreted mode flag (fallback operators pay — and
					// report — interpreter costs).
					for _, r := range vrecs {
						switch r.Kind {
						case ou.VecScan, ou.VecFilter, ou.VecProbe:
							totalVecRecs++
						case ou.SeqScan, ou.IdxScan, ou.HashJoinBuild, ou.HashJoinProbe,
							ou.AggBuild, ou.AggProbe, ou.SortBuild, ou.SortIter, ou.Output:
							f := r.Features
							if f[len(f)-1] != 0 {
								t.Errorf("%s: %v record flagged compiled in vectorized mode", q.Name, r.Kind)
							}
						}
					}
				}
				if tc.wantVec && totalBatches == 0 {
					t.Error("no template exercised the vectorized path")
				}
				if tc.wantVec && totalVecRecs == 0 {
					t.Error("no template emitted VEC_* OU records")
				}
			})
		}
	}
}
