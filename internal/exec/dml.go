package exec

import (
	"fmt"

	"mb2/internal/index"
	"mb2/internal/ou"
	"mb2/internal/plan"
	"mb2/internal/wal"
)

func execInsert(ctx *Ctx, n *plan.InsertNode) (*Batch, error) {
	if ctx.Txn == nil {
		return nil, fmt.Errorf("exec: INSERT requires an open transaction")
	}
	tbl := ctx.DB.Table(n.Table)
	if tbl == nil {
		return nil, fmt.Errorf("exec: table %q does not exist", n.Table)
	}
	idxMetas := ctx.DB.Catalog.TableIndexes(tbl.Meta.ID)

	start := ctx.Tracker.Start()
	for i, data := range n.Tuples {
		row := tbl.Insert(ctx.Thread(), ctx.Txn.ID, data)
		for _, im := range idxMetas {
			if bt := ctx.DB.Index(im.Name); bt != nil {
				// Fresh key: the tree retains inserted keys, so the worker
				// scratch buffer must not be used here.
				bt.Insert(ctx.Thread(), index.KeyFromTuple(data, im.KeyCols), row, ctx.Contenders)
			}
		}
		ctx.Txn.RecordWrite(tbl, row, data)
		if err := ctx.DB.WAL.Enqueue(ctx.Thread(), wal.Record{
			Type: wal.RecordInsert, TxnID: ctx.Txn.ID,
			TableID: int32(tbl.Meta.ID), Row: int64(row), Payload: data,
		}); err != nil {
			ctx.Tracker.Stop(ou.Insert, ou.ExecFeatures(float64(i), float64(tbl.Meta.Schema.NumColumns()),
				float64(tbl.Meta.Schema.TupleBytes()), 0, 0, 1, ctx.compiled()), start)
			return nil, fmt.Errorf("exec: INSERT not loggable: %w", err)
		}
		ctx.compute(20)
	}
	nrows := float64(len(n.Tuples))
	width := float64(tbl.Meta.Schema.TupleBytes())
	cols := float64(tbl.Meta.Schema.NumColumns())
	feats := ou.ExecFeatures(nrows, cols, width, 0, 0, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.Insert, feats, start)
	return &Batch{}, nil
}

func execUpdate(ctx *Ctx, n *plan.UpdateNode) (*Batch, error) {
	if ctx.Txn == nil {
		return nil, fmt.Errorf("exec: UPDATE requires an open transaction")
	}
	child, err := Execute(ctx, n.Child)
	if err != nil {
		return nil, err
	}
	if child.RowIDs == nil && len(child.Rows) > 0 {
		return nil, fmt.Errorf("exec: UPDATE child lost row identities")
	}
	tbl := ctx.DB.Table(n.Table)
	if tbl == nil {
		return nil, fmt.Errorf("exec: table %q does not exist", n.Table)
	}
	idxMetas := ctx.DB.Catalog.TableIndexes(tbl.Meta.ID)

	start := ctx.Tracker.Start()
	for i, old := range child.Rows {
		row := child.RowIDs[i]
		updated := old.Clone()
		for j, col := range n.SetCols {
			updated[col] = n.SetExprs[j].Eval(old)
			ctx.compute(n.SetExprs[j].Ops() * 2)
		}
		if err := tbl.Update(ctx.Thread(), row, ctx.Txn.ID, ctx.Txn.ReadTS, updated); err != nil {
			ctx.Tracker.Stop(ou.Update, ou.ExecFeatures(float64(i), float64(len(old)),
				float64(tbl.Meta.Schema.TupleBytes()), 0, 0, 1, ctx.compiled()), start)
			return nil, err
		}
		for _, im := range idxMetas {
			bt := ctx.DB.Index(im.Name)
			if bt == nil {
				continue
			}
			// The old key is transient (Delete never retains it) so it uses
			// the worker scratch buffer; the new key is fresh because the
			// tree retains inserted keys.
			ctx.keyBuf = index.AppendKeyFromTuple(ctx.keyBuf[:0], old, im.KeyCols)
			newKey := index.KeyFromTuple(updated, im.KeyCols)
			if !index.Key(ctx.keyBuf).Equal(newKey) {
				bt.Delete(ctx.Thread(), ctx.keyBuf, row, ctx.Contenders)
				bt.Insert(ctx.Thread(), newKey, row, ctx.Contenders)
			}
		}
		ctx.Txn.RecordWrite(tbl, row, updated)
		if err := ctx.DB.WAL.Enqueue(ctx.Thread(), wal.Record{
			Type: wal.RecordUpdate, TxnID: ctx.Txn.ID,
			TableID: int32(tbl.Meta.ID), Row: int64(row), Payload: updated,
		}); err != nil {
			ctx.Tracker.Stop(ou.Update, ou.ExecFeatures(float64(i), float64(len(old)),
				float64(tbl.Meta.Schema.TupleBytes()), 0, 0, 1, ctx.compiled()), start)
			return nil, fmt.Errorf("exec: UPDATE not loggable: %w", err)
		}
		ctx.compute(20)
	}
	width := float64(tbl.Meta.Schema.TupleBytes())
	cols := float64(tbl.Meta.Schema.NumColumns())
	feats := ou.ExecFeatures(child.NumRows(), cols, width, 0, 0, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.Update, feats, start)
	return &Batch{}, nil
}

func execDelete(ctx *Ctx, n *plan.DeleteNode) (*Batch, error) {
	if ctx.Txn == nil {
		return nil, fmt.Errorf("exec: DELETE requires an open transaction")
	}
	child, err := Execute(ctx, n.Child)
	if err != nil {
		return nil, err
	}
	if child.RowIDs == nil && len(child.Rows) > 0 {
		return nil, fmt.Errorf("exec: DELETE child lost row identities")
	}
	tbl := ctx.DB.Table(n.Table)
	if tbl == nil {
		return nil, fmt.Errorf("exec: table %q does not exist", n.Table)
	}
	idxMetas := ctx.DB.Catalog.TableIndexes(tbl.Meta.ID)

	start := ctx.Tracker.Start()
	for i, old := range child.Rows {
		row := child.RowIDs[i]
		if err := tbl.Delete(ctx.Thread(), row, ctx.Txn.ID, ctx.Txn.ReadTS); err != nil {
			ctx.Tracker.Stop(ou.Delete, ou.ExecFeatures(float64(i), float64(len(old)),
				float64(tbl.Meta.Schema.TupleBytes()), 0, 0, 1, ctx.compiled()), start)
			return nil, err
		}
		for _, im := range idxMetas {
			if bt := ctx.DB.Index(im.Name); bt != nil {
				ctx.keyBuf = index.AppendKeyFromTuple(ctx.keyBuf[:0], old, im.KeyCols)
				bt.Delete(ctx.Thread(), ctx.keyBuf, row, ctx.Contenders)
			}
		}
		ctx.Txn.RecordWrite(tbl, row, nil)
		if err := ctx.DB.WAL.Enqueue(ctx.Thread(), wal.Record{
			Type: wal.RecordDelete, TxnID: ctx.Txn.ID,
			TableID: int32(tbl.Meta.ID), Row: int64(row),
		}); err != nil {
			ctx.Tracker.Stop(ou.Delete, ou.ExecFeatures(float64(i), float64(len(old)),
				float64(tbl.Meta.Schema.TupleBytes()), 0, 0, 1, ctx.compiled()), start)
			return nil, fmt.Errorf("exec: DELETE not loggable: %w", err)
		}
		ctx.compute(15)
	}
	width := float64(tbl.Meta.Schema.TupleBytes())
	cols := float64(tbl.Meta.Schema.NumColumns())
	feats := ou.ExecFeatures(child.NumRows(), cols, width, 0, 0, 1, ctx.compiled())
	ctx.Tracker.Stop(ou.Delete, feats, start)
	return &Batch{}, nil
}
