package exec

import "mb2/internal/storage"

// Batch is a materialized set of rows flowing between operators. Scans over
// base tables also carry row identities so DML parents can write back.
type Batch struct {
	Rows   []storage.Tuple
	RowIDs []storage.RowID // nil once provenance is lost (joins, aggs)
}

// NumRows returns the row count.
func (b *Batch) NumRows() float64 { return float64(len(b.Rows)) }

// NumCols returns the column count of the first row (0 when empty).
func (b *Batch) NumCols() float64 {
	if len(b.Rows) == 0 {
		return 0
	}
	return float64(len(b.Rows[0]))
}

// AvgWidth returns the average tuple width in bytes, sampled.
func (b *Batch) AvgWidth() float64 {
	if len(b.Rows) == 0 {
		return 0
	}
	step := len(b.Rows)/64 + 1
	total, n := 0, 0
	for i := 0; i < len(b.Rows); i += step {
		total += b.Rows[i].Bytes()
		n++
	}
	return float64(total) / float64(n)
}

// sampledWidth computes AvgWidth's statistic over a pre-extracted width
// list. Fused pipelines record per-row widths while streaming (tuples are
// never materialized) and replay the exact charge the operator-at-a-time
// path would have made.
func sampledWidth(widths []int) float64 {
	if len(widths) == 0 {
		return 0
	}
	step := len(widths)/64 + 1
	total, n := 0, 0
	for i := 0; i < len(widths); i += step {
		total += widths[i]
		n++
	}
	return float64(total) / float64(n)
}
