package exec

import (
	"mb2/internal/hw"
	"mb2/internal/plan"
)

// QueryObserver receives one event per query executed on the live path:
// the template's name, its plan fingerprint, and the isolated (per-thread,
// pre-contention) metrics the execution consumed. This is the hook the
// online control loop uses to stream per-template arrival counts and
// resource usage out of the execution engine — the same counters the
// offline runners collect, but fed continuously instead of in sweeps.
//
// Implementations are called from whatever goroutine executes the query;
// an observer shared across workers must be safe for concurrent use (the
// self-driving loop gives each session its own buffer and merges in
// session order to keep float reductions deterministic).
type QueryObserver interface {
	ObserveQuery(template string, fingerprint uint64, iso hw.Metrics)
}

// ExecuteObserved runs a plan like Execute and streams the invocation to
// the context's observer (when one is attached) tagged with the template
// name and plan fingerprint. The metrics bracket the whole query — every
// operator OU plus tracker overhead — measured on the worker's thread in
// isolation; contention adjustment across concurrent workers happens in
// the caller's interval reduction, exactly as with the offline runners.
//
// Observation is all-or-nothing: a query that fails — including one a
// process-list kill interrupts mid-plan — is never reported to the
// observer, so a session's observation buffer only ever holds whole
// completed queries and the Emit-vs-Drain exactly-once contract survives
// cancellation at any point (the regression internal/session pins).
func ExecuteObserved(ctx *Ctx, template string, fingerprint uint64, node plan.Node) (*Batch, hw.Metrics, error) {
	before := ctx.Thread().Counters()
	b, err := Execute(ctx, node)
	iso := ctx.Thread().Since(before)
	if err != nil {
		return nil, iso, err
	}
	if ctx.Observer != nil {
		ctx.Observer.ObserveQuery(template, fingerprint, iso)
	}
	return b, iso, nil
}
