// Package qppnet implements the QPPNet baseline (Marcus & Papaemmanouil,
// VLDB 2019) the paper compares MB2 against (Sec 8.3): a plan-structured
// neural network where each operator type has its own neural unit whose
// inputs are the operator's plan features concatenated with its children's
// hidden output vectors, trained end-to-end on observed query latency.
//
// As in the paper's adaptation, disk-oriented features are dropped and the
// operator-level tree structure follows our engine's pipelines. QPPNet
// needs the training data to contain every operator combination appearing
// in test plans, and it consumes raw plan features — the properties that
// limit its generalization to other dataset sizes and workloads, which
// Fig 7 measures.
package qppnet

import (
	"fmt"
	"math"
	"math/rand"

	"mb2/internal/plan"
)

const (
	hiddenDim = 16 // neurons in each unit's hidden layer
	outDim    = 8  // data vector passed to the parent; element 0 is latency
	numFeats  = 5  // per-operator plan features
	maxKids   = 2
	inDim     = numFeats + maxKids*outDim
)

// opType names the operator-specific neural units.
func opType(n plan.Node) string {
	switch n.(type) {
	case *plan.SeqScanNode:
		return "seqscan"
	case *plan.IdxScanNode:
		return "idxscan"
	case *plan.HashJoinNode:
		return "hashjoin"
	case *plan.IndexJoinNode:
		return "idxjoin"
	case *plan.AggNode:
		return "agg"
	case *plan.SortNode:
		return "sort"
	case *plan.ProjectNode:
		return "project"
	case *plan.FilterNode:
		return "filter"
	case *plan.OutputNode:
		return "output"
	case *plan.InsertNode:
		return "insert"
	case *plan.UpdateNode:
		return "update"
	case *plan.DeleteNode:
		return "delete"
	default:
		return "other"
	}
}

// features extracts the raw plan features one unit consumes.
func features(n plan.Node) []float64 {
	e := n.Est()
	f := []float64{e.Rows, e.Distinct, 0, 0, 1}
	switch v := n.(type) {
	case *plan.SeqScanNode:
		if v.Filter != nil {
			f[2] = v.Filter.Ops()
		}
		f[3] = v.TableRows
	case *plan.IdxScanNode:
		f[2] = v.Loops
	case *plan.HashJoinNode:
		f[2] = float64(len(v.LeftKeys))
	case *plan.AggNode:
		f[2] = float64(len(v.GroupBy))
		f[3] = float64(len(v.Aggs))
	case *plan.SortNode:
		f[2] = float64(len(v.Keys))
		f[3] = float64(v.Limit)
	case *plan.ProjectNode:
		f[2] = float64(len(v.Exprs))
	case *plan.FilterNode:
		f[2] = v.Pred.Ops()
	}
	return f
}

// unit is one operator type's two-layer neural network.
type unit struct {
	w1 [][]float64 // hiddenDim x inDim
	b1 []float64
	w2 [][]float64 // outDim x hiddenDim
	b2 []float64

	// Adam state.
	mw1, vw1, mw2, vw2 [][]float64
	mb1, vb1, mb2, vb2 []float64
}

func newUnit(rng *rand.Rand) *unit {
	alloc := func(rows, cols int, scale float64) [][]float64 {
		m := make([][]float64, rows)
		for i := range m {
			m[i] = make([]float64, cols)
			for j := range m[i] {
				if scale > 0 {
					m[i][j] = rng.NormFloat64() * scale
				}
			}
		}
		return m
	}
	return &unit{
		w1:  alloc(hiddenDim, inDim, math.Sqrt(2.0/inDim)),
		b1:  make([]float64, hiddenDim),
		w2:  alloc(outDim, hiddenDim, math.Sqrt(2.0/hiddenDim)),
		b2:  make([]float64, outDim),
		mw1: alloc(hiddenDim, inDim, 0), vw1: alloc(hiddenDim, inDim, 0),
		mw2: alloc(outDim, hiddenDim, 0), vw2: alloc(outDim, hiddenDim, 0),
		mb1: make([]float64, hiddenDim), vb1: make([]float64, hiddenDim),
		mb2: make([]float64, outDim), vb2: make([]float64, outDim),
	}
}

// nodeState caches one node's forward pass for backprop.
type nodeState struct {
	node   plan.Node
	unit   *unit
	kids   []*nodeState
	input  []float64
	hidden []float64 // post-ReLU
	out    []float64
}

// Model is a trained QPPNet.
type Model struct {
	Epochs int
	LR     float64
	seed   int64

	units  map[string]*unit
	xStats [numFeats][2]float64 // per-feature mean/std from training plans
	yMean  float64
	yStd   float64
	step   int
}

// New returns an untrained QPPNet.
func New(seed int64) *Model {
	return &Model{Epochs: 80, LR: 2e-3, seed: seed, units: make(map[string]*unit)}
}

func (m *Model) normFeat(f []float64) []float64 {
	out := make([]float64, numFeats)
	for i := 0; i < numFeats; i++ {
		out[i] = (f[i] - m.xStats[i][0]) / m.xStats[i][1]
	}
	return out
}

func (m *Model) forward(n plan.Node, rng *rand.Rand) *nodeState {
	t := opType(n)
	u, ok := m.units[t]
	if !ok {
		u = newUnit(rng)
		m.units[t] = u
	}
	st := &nodeState{node: n, unit: u}
	input := make([]float64, inDim)
	copy(input, m.normFeat(features(n)))
	for i, c := range n.Children() {
		if i >= maxKids {
			break
		}
		kid := m.forward(c, rng)
		st.kids = append(st.kids, kid)
		copy(input[numFeats+i*outDim:], kid.out)
	}
	st.input = input
	st.hidden = make([]float64, hiddenDim)
	for h := 0; h < hiddenDim; h++ {
		s := u.b1[h]
		for j, v := range input {
			s += u.w1[h][j] * v
		}
		if s < 0 {
			s = 0
		}
		st.hidden[h] = s
	}
	st.out = make([]float64, outDim)
	for o := 0; o < outDim; o++ {
		s := u.b2[o]
		for h, v := range st.hidden {
			s += u.w2[o][h] * v
		}
		st.out[o] = s
	}
	return st
}

// backward propagates dL/d(out) through the node and its subtree, applying
// Adam updates immediately (per-sample SGD as in the reference
// implementation).
func (m *Model) backward(st *nodeState, gradOut []float64, lr float64) {
	u := st.unit
	// Through the output layer.
	gradHidden := make([]float64, hiddenDim)
	for o := 0; o < outDim; o++ {
		g := gradOut[o]
		if g == 0 {
			continue
		}
		for h := 0; h < hiddenDim; h++ {
			gradHidden[h] += u.w2[o][h] * g
			adam(&u.w2[o][h], &u.mw2[o][h], &u.vw2[o][h], g*st.hidden[h], lr, m.step)
		}
		adam(&u.b2[o], &u.mb2[o], &u.vb2[o], g, lr, m.step)
	}
	// Through ReLU + input layer.
	gradInput := make([]float64, inDim)
	for h := 0; h < hiddenDim; h++ {
		if st.hidden[h] <= 0 || gradHidden[h] == 0 {
			continue
		}
		g := gradHidden[h]
		for j := 0; j < inDim; j++ {
			gradInput[j] += u.w1[h][j] * g
			adam(&u.w1[h][j], &u.mw1[h][j], &u.vw1[h][j], g*st.input[j], lr, m.step)
		}
		adam(&u.b1[h], &u.mb1[h], &u.vb1[h], g, lr, m.step)
	}
	// Into the children.
	for i, kid := range st.kids {
		m.backward(kid, gradInput[numFeats+i*outDim:numFeats+(i+1)*outDim], lr)
	}
}

func adam(w, mm, vv *float64, g, lr float64, step int) {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	*mm = b1**mm + (1-b1)*g
	*vv = b2**vv + (1-b2)*g*g
	mc := *mm / (1 - math.Pow(b1, float64(step)))
	vc := *vv / (1 - math.Pow(b2, float64(step)))
	*w -= lr * mc / (math.Sqrt(vc) + eps)
}

// Fit trains the network on (plan, latency-in-microseconds) pairs.
func (m *Model) Fit(plans []plan.Node, latencies []float64) error {
	if len(plans) == 0 || len(plans) != len(latencies) {
		return fmt.Errorf("qppnet: need matching plans and latencies")
	}
	// Feature statistics over every operator in the training plans.
	var sums, sqs [numFeats]float64
	count := 0.0
	for _, p := range plans {
		plan.Walk(p, func(n plan.Node) {
			f := features(n)
			for i := 0; i < numFeats; i++ {
				sums[i] += f[i]
				sqs[i] += f[i] * f[i]
			}
			count++
		})
	}
	for i := 0; i < numFeats; i++ {
		mean := sums[i] / count
		std := math.Sqrt(sqs[i]/count - mean*mean)
		if std < 1e-9 {
			std = 1
		}
		m.xStats[i] = [2]float64{mean, std}
	}
	// Target statistics (log space stabilizes the wide latency range).
	ys := make([]float64, len(latencies))
	var ySum, ySq float64
	for i, v := range latencies {
		ys[i] = math.Log1p(v)
		ySum += ys[i]
		ySq += ys[i] * ys[i]
	}
	m.yMean = ySum / float64(len(ys))
	m.yStd = math.Sqrt(ySq/float64(len(ys)) - m.yMean*m.yMean)
	if m.yStd < 1e-9 {
		m.yStd = 1
	}

	rng := rand.New(rand.NewSource(m.seed))
	idx := rng.Perm(len(plans))
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			m.step++
			st := m.forward(plans[i], rng)
			target := (ys[i] - m.yMean) / m.yStd
			grad := make([]float64, outDim)
			grad[0] = 2 * (st.out[0] - target)
			m.backward(st, grad, m.LR)
		}
	}
	return nil
}

// Predict returns the predicted latency in microseconds for a plan.
func (m *Model) Predict(p plan.Node) float64 {
	rng := rand.New(rand.NewSource(m.seed))
	st := m.forward(p, rng)
	y := st.out[0]*m.yStd + m.yMean
	lat := math.Expm1(y)
	if lat < 0 {
		lat = 0
	}
	return lat
}

// SizeBytes approximates the trained model's footprint.
func (m *Model) SizeBytes() int {
	perUnit := 8 * (hiddenDim*inDim + hiddenDim + outDim*hiddenDim + outDim)
	return len(m.units) * perUnit
}
