package qppnet

import (
	"math"
	"math/rand"
	"testing"

	"mb2/internal/plan"
)

// synthPlan builds a scan(+filter)+agg plan whose synthetic latency follows
// a simple law of its cardinalities.
func synthPlan(rows, groups float64) plan.Node {
	return &plan.OutputNode{
		Child: &plan.AggNode{
			Child:   &plan.SeqScanNode{Table: "t", TableRows: rows, Rows: plan.Estimates{Rows: rows}},
			GroupBy: []int{1},
			Aggs:    []plan.AggSpec{{Fn: plan.Count, Arg: plan.Col(0)}},
			Rows:    plan.Estimates{Rows: groups, Distinct: groups},
		},
		Rows: plan.Estimates{Rows: groups},
	}
}

func synthLatency(rows, groups float64) float64 {
	return 5*rows + 2*groups + 100
}

func trainingSet(n int, seed int64, maxRows float64) ([]plan.Node, []float64) {
	rng := rand.New(rand.NewSource(seed))
	var plans []plan.Node
	var lats []float64
	for i := 0; i < n; i++ {
		rows := 100 + rng.Float64()*maxRows
		groups := 1 + rng.Float64()*rows/10
		plans = append(plans, synthPlan(rows, groups))
		lats = append(lats, synthLatency(rows, groups))
	}
	return plans, lats
}

func TestFitAndPredictInDistribution(t *testing.T) {
	plans, lats := trainingSet(300, 1, 10000)
	m := New(7)
	if err := m.Fit(plans, lats); err != nil {
		t.Fatal(err)
	}
	testPlans, testLats := trainingSet(50, 2, 10000)
	totalRel := 0.0
	for i, p := range testPlans {
		pred := m.Predict(p)
		totalRel += math.Abs(pred-testLats[i]) / testLats[i]
	}
	avg := totalRel / float64(len(testPlans))
	if avg > 0.35 {
		t.Fatalf("in-distribution rel error = %v", avg)
	}
}

func TestGeneralizationDegradesOutOfDistribution(t *testing.T) {
	plans, lats := trainingSet(300, 3, 10000)
	m := New(7)
	if err := m.Fit(plans, lats); err != nil {
		t.Fatal(err)
	}
	inPlans, inLats := trainingSet(50, 4, 10000)
	inErr := 0.0
	for i, p := range inPlans {
		inErr += math.Abs(m.Predict(p)-inLats[i]) / inLats[i]
	}
	inErr /= float64(len(inPlans))

	// 10x larger data: the raw-feature NN must extrapolate and suffer —
	// the limitation Fig 7a demonstrates.
	outErr := 0.0
	const n = 50
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		rows := 80000 + rng.Float64()*40000
		groups := 1 + rng.Float64()*rows/10
		outErr += math.Abs(m.Predict(synthPlan(rows, groups))-synthLatency(rows, groups)) / synthLatency(rows, groups)
	}
	outErr /= n
	if outErr <= inErr {
		t.Fatalf("expected degradation out of distribution: in=%v out=%v", inErr, outErr)
	}
}

func TestPredictNonNegativeAndDeterministic(t *testing.T) {
	plans, lats := trainingSet(100, 6, 5000)
	m1, m2 := New(9), New(9)
	if err := m1.Fit(plans, lats); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(plans, lats); err != nil {
		t.Fatal(err)
	}
	p := synthPlan(500, 20)
	if m1.Predict(p) != m2.Predict(p) {
		t.Fatal("training must be deterministic for a fixed seed")
	}
	if m1.Predict(p) < 0 {
		t.Fatal("latency prediction must be non-negative")
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	m := New(1)
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty training set must error")
	}
	if err := m.Fit([]plan.Node{synthPlan(10, 2)}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths must error")
	}
}

func TestOpTypesDistinct(t *testing.T) {
	seen := map[string]bool{}
	nodes := []plan.Node{
		&plan.SeqScanNode{}, &plan.IdxScanNode{}, &plan.HashJoinNode{},
		&plan.IndexJoinNode{}, &plan.AggNode{}, &plan.SortNode{},
		&plan.ProjectNode{}, &plan.FilterNode{}, &plan.OutputNode{},
		&plan.InsertNode{}, &plan.UpdateNode{}, &plan.DeleteNode{},
	}
	for _, n := range nodes {
		tp := opType(n)
		if seen[tp] {
			t.Fatalf("duplicate op type %q", tp)
		}
		seen[tp] = true
	}
}

func TestSizeBytesGrowsWithUnits(t *testing.T) {
	plans, lats := trainingSet(50, 8, 1000)
	m := New(1)
	if err := m.Fit(plans, lats); err != nil {
		t.Fatal(err)
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("size must be positive after training")
	}
}
