package repl

import (
	"encoding/binary"
	"fmt"
	"sync"

	"mb2/internal/engine"
	"mb2/internal/server"
)

// GroupConfig configures a replication group.
type GroupConfig struct {
	// Replicas is the follower count (at least 1).
	Replicas int
	// Cadence[i] ships to replica i only on every Nth Sync (missing or
	// <=1 means every Sync): the network-staleness knob. A lagging
	// cadence leaves the replica whole segments behind between ships.
	Cadence []int
	// ApplyEvery[i] is replica i's lazy-apply batch (ReplicaConfig).
	ApplyEvery []int
}

func (c GroupConfig) cadence(i int) int {
	if i < len(c.Cadence) && c.Cadence[i] > 1 {
		return c.Cadence[i]
	}
	return 1
}

func (c GroupConfig) applyEvery(i int) int {
	if i < len(c.ApplyEvery) {
		return c.ApplyEvery[i]
	}
	return 1
}

// Group wires a primary engine to its replicas over a server.Transport and
// ships the primary's durable log in lockstep: one frame, one ack, replicas
// in ascending ID order. Over the in-process pipe transport the whole
// exchange is deterministic — same primary writes, same shipped bytes, same
// replica state, bit for bit — which is what the failover drills replay.
type Group struct {
	db  *engine.DB
	cfg GroupConfig
	ln  server.Listener

	replicas   []*Replica
	conns      []server.Conn
	sentEpoch  []uint64
	sentBytes  []int
	ackCommits []uint64
	syncs      int
	closed     bool
	wg         sync.WaitGroup
}

// NewGroup stands up n replicas from factory behind tr and connects the
// primary to each. Dial/accept runs serially per replica, so replica IDs,
// connection order, and therefore every subsequent ship are deterministic.
func NewGroup(db *engine.DB, factory DBFactory, tr server.Transport, cfg GroupConfig) (*Group, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("repl: group needs at least one replica, got %d", cfg.Replicas)
	}
	ln, err := tr.Listen()
	if err != nil {
		return nil, err
	}
	g := &Group{
		db:         db,
		cfg:        cfg,
		ln:         ln,
		sentEpoch:  make([]uint64, cfg.Replicas),
		sentBytes:  make([]int, cfg.Replicas),
		ackCommits: make([]uint64, cfg.Replicas),
	}
	for i := 0; i < cfg.Replicas; i++ {
		rep, err := NewReplica(i, factory, ReplicaConfig{ApplyEvery: cfg.applyEvery(i)})
		if err != nil {
			g.Close()
			return nil, err
		}
		// Accept concurrently with Dial: the pipe transport hands the
		// server side over synchronously inside Dial.
		type accepted struct {
			c   server.Conn
			err error
		}
		ch := make(chan accepted, 1)
		go func() {
			c, err := ln.Accept()
			ch <- accepted{c, err}
		}()
		pc, err := tr.Dial()
		if err != nil {
			g.Close()
			return nil, err
		}
		ac := <-ch
		if ac.err != nil {
			pc.Close()
			g.Close()
			return nil, ac.err
		}
		g.replicas = append(g.replicas, rep)
		g.conns = append(g.conns, pc)
		g.wg.Add(1)
		go func(rep *Replica, c server.Conn) {
			defer g.wg.Done()
			serveReplica(rep, c)
		}(rep, ac.c)
	}
	return g, nil
}

// serveReplica is the follower's receive loop: read a frame, handle it,
// answer with the ack. A transport error (the primary closed the group)
// ends the loop quietly; a protocol error is recorded on the replica.
func serveReplica(r *Replica, c server.Conn) {
	defer c.Close()
	for {
		f, err := ReadShipFrame(c)
		if err != nil {
			return
		}
		ack, err := r.HandleFrame(f)
		if err != nil {
			r.mu.Lock()
			r.serveErr = err
			r.mu.Unlock()
			return
		}
		if err := WriteShipFrame(c, ack); err != nil {
			return
		}
	}
}

// Replicas returns the group's followers in ID order.
func (g *Group) Replicas() []*Replica { return g.replicas }

// Sync ships the primary's current durable state to every replica whose
// cadence is due: a snapshot frame first when the primary's epoch moved
// (checkpoint truncation), then the unsent suffix of the durable segment
// image. Each frame blocks for its ack, and acks are validated against the
// bytes shipped, so a lost or reordered frame cannot go unnoticed. Call it
// after every primary log flush.
func (g *Group) Sync() error {
	g.syncs++
	durable := g.db.WAL.Durable()
	epoch := g.db.WAL.Epoch()
	for i, rep := range g.replicas {
		if g.syncs%g.cfg.cadence(i) != 0 {
			continue
		}
		if g.sentEpoch[i] != epoch {
			snap := ShipFrame{Type: ShipSnapshot, Epoch: epoch, Payload: g.db.CheckpointImage()}
			if err := g.exchange(i, rep, snap); err != nil {
				return err
			}
			g.sentEpoch[i] = epoch
			g.sentBytes[i] = 0
		}
		if len(durable) > g.sentBytes[i] {
			app := ShipFrame{
				Type:    ShipAppend,
				Epoch:   epoch,
				Offset:  uint64(g.sentBytes[i]),
				Payload: durable[g.sentBytes[i]:],
			}
			if err := g.exchange(i, rep, app); err != nil {
				return err
			}
			g.sentBytes[i] = len(durable)
		}
	}
	return nil
}

// exchange ships one frame and validates its ack.
func (g *Group) exchange(i int, rep *Replica, f ShipFrame) error {
	if err := WriteShipFrame(g.conns[i], f); err != nil {
		return g.shipErr(i, rep, err)
	}
	ack, err := ReadShipFrame(g.conns[i])
	if err != nil {
		return g.shipErr(i, rep, err)
	}
	if ack.Type != ShipAck || ack.Epoch != f.Epoch {
		return fmt.Errorf("repl: replica %d acked type %d epoch %d for epoch %d",
			i, ack.Type, ack.Epoch, f.Epoch)
	}
	want := f.Offset + uint64(len(f.Payload))
	if f.Type == ShipSnapshot {
		want = 0
	}
	if ack.Offset != want {
		return fmt.Errorf("repl: replica %d acked %d received bytes, want %d", i, ack.Offset, want)
	}
	if len(ack.Payload) == 8 {
		g.ackCommits[i] = binary.LittleEndian.Uint64(ack.Payload)
	}
	return nil
}

// shipErr prefers the replica's own protocol error — the root cause — over
// the transport error its connection teardown produced.
func (g *Group) shipErr(i int, rep *Replica, err error) error {
	if rerr := rep.Err(); rerr != nil {
		return rerr
	}
	return fmt.Errorf("repl: shipping to replica %d: %w", i, err)
}

// AckedCommits returns the last acked applied-commit count per replica: the
// primary's own view of replica staleness, without touching replica state.
func (g *Group) AckedCommits() []uint64 {
	return append([]uint64(nil), g.ackCommits...)
}

// Status snapshots every replica's staleness in ID order.
func (g *Group) Status() []Status {
	out := make([]Status, len(g.replicas))
	for i, rep := range g.replicas {
		out[i] = rep.Status()
	}
	return out
}

// Close tears down the ship connections and waits for the follower loops to
// drain. The replicas stay alive — promotion happens after Close.
func (g *Group) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	for _, c := range g.conns {
		c.Close()
	}
	err := g.ln.Close()
	g.wg.Wait()
	return err
}
