// Package repl is the log-shipping replication layer: a primary streams its
// durable WAL segment — the exact on-disk bytes, unchanged — to N replicas,
// each of which applies committed transactions in commit order and stands
// ready to be promoted when the primary dies.
//
// The design keeps the WAL format the single source of truth. A ship frame
// carries a byte range of the primary's durable segment image stamped with
// the segment epoch and starting offset (frame.go); the replica concatenates
// ranges, re-parses the image with the same tolerant parsers recovery uses
// (wal.ParseSegment, wal.DeserializePrefix), and applies the unseen commit
// suffix with wal.ReplayRange. When the primary checkpoints — truncating the
// log and opening a new epoch — it ships the checkpoint-device image as a
// snapshot frame and the replica re-seeds from it, exactly the crash-recovery
// path on a fresh engine.
//
// Everything is deterministic by construction: frames travel over a
// server.Transport (the in-proc pipe for drills, TCP for real wires), the
// primary ships in lockstep — one frame, one ack — in fixed replica order,
// and every receive/apply cost is charged to the replica's own hw.Thread. A
// replica's staleness (commit lag, byte lag, pending replay work) is
// therefore an exact, replayable quantity the planner can price with the
// recovery OUs (REPLAY, INDEX_REBUILD, CHECKPOINT) when it picks a promotion
// target or schedules a checkpoint.
package repl
