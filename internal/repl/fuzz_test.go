package repl

import (
	"bytes"
	"testing"
)

// FuzzShipFrame throws arbitrary bytes at the ship-frame parsers, mirroring
// the server's FuzzFrame. Invariants: DecodeShipPrefix never panics,
// consumed stays in bounds, a partial prefix always carries a reason, the
// consumed prefix re-encodes byte-identically, and DecodeShipFrame agrees
// frame-for-frame with the tolerant walk.
func FuzzShipFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendShipFrame(nil, ShipFrame{Type: ShipAppend, Epoch: 3, Offset: 20, Payload: []byte("segment bytes")}))
	f.Add(AppendShipFrame(
		AppendShipFrame(nil, ShipFrame{Type: ShipSnapshot, Epoch: 4, Payload: []byte("ckpt image")}),
		ShipFrame{Type: ShipAck, Epoch: 4, Offset: 132, Payload: []byte{7, 0, 0, 0, 0, 0, 0, 0}},
	))
	f.Add(AppendShipFrame(nil, ShipFrame{Type: ShipAck}))

	f.Fuzz(func(t *testing.T, data []byte) {
		frames, consumed, reason := DecodeShipPrefix(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		if consumed != len(data) && reason == "" {
			t.Fatal("partial prefix must carry a reason")
		}
		if consumed == len(data) && reason != "" {
			t.Fatalf("full consumption with stop reason %q", reason)
		}
		// The strict decoder accepts exactly the frames the tolerant walk
		// consumed, in order.
		rest := data[:consumed]
		for i, want := range frames {
			got, n, err := DecodeShipFrame(rest)
			if err != nil {
				t.Fatalf("strict decode of consumed frame %d failed: %v", i, err)
			}
			if got.Type != want.Type || got.Epoch != want.Epoch ||
				got.Offset != want.Offset || !bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("strict/tolerant disagree on frame %d", i)
			}
			rest = rest[n:]
		}
		if len(rest) != 0 {
			t.Fatalf("strict walk left %d bytes of the consumed prefix", len(rest))
		}
		// Round trip: re-encoding the parsed frames rebuilds the prefix.
		var rebuilt []byte
		for _, fr := range frames {
			rebuilt = AppendShipFrame(rebuilt, fr)
		}
		if !bytes.Equal(rebuilt, data[:consumed]) {
			t.Fatalf("re-encoding differs: %d vs %d bytes", len(rebuilt), consumed)
		}
	})
}
