package repl

import (
	"encoding/binary"
	"fmt"
	"sync"

	"mb2/internal/engine"
	"mb2/internal/hw"
	"mb2/internal/storage"
	"mb2/internal/wal"
)

// DBFactory builds a fresh, empty engine with the replicated schema already
// applied (catalog recovery is out of scope, as in engine.RecoverImages).
// A replica calls it once at creation and again on every snapshot re-seed.
type DBFactory func() (*engine.DB, error)

// ReplicaConfig tunes one replica's apply behavior.
type ReplicaConfig struct {
	// ApplyEvery applies the received backlog only on every Nth append
	// frame (<=1 applies eagerly on each). A lazy replica acknowledges
	// receipt immediately — the bytes are durable on its side — but defers
	// the replay work, so it accumulates exactly the catch-up backlog a
	// promotion must pay for. This is the staleness knob the failover
	// drills sweep.
	ApplyEvery int
}

// Status is a replica's staleness snapshot: every quantity the planner needs
// to price a promotion of this node.
type Status struct {
	ID    int
	Epoch uint64
	// ReceivedBytes is the segment-image byte count received and acked.
	ReceivedBytes int
	// ReceivedCommits is the absolute commit count durable in the received
	// image's valid prefix (checkpoint snapshot + shipped tail).
	ReceivedCommits uint64
	// AppliedCommits is the absolute commit count already applied.
	AppliedCommits uint64
	// PendingCommits/PendingRecords/PendingBytes measure the replay
	// backlog a promotion must work through.
	PendingCommits uint64
	PendingRecords int
	PendingBytes   int
	// Rows, Indexes, and IndexKeyBytes size the post-replay index rebuild.
	Rows          int
	Indexes       int
	IndexKeyBytes int
	// Reseeds counts snapshot re-seeds (primary checkpoints absorbed).
	Reseeds int
	// Metrics is the cumulative simulated cost charged to the replica's
	// thread: its wall-clock lag source.
	Metrics hw.Metrics
}

// PromoteStats describes one promotion: the catch-up replay, the index
// rebuild, and the establishing checkpoint, with the simulated cost of
// exactly that work in Elapsed.
type PromoteStats struct {
	ID             int
	AppliedRecords int
	Commits        uint64
	IndexesRebuilt int
	IndexRows      int
	Checkpoint     engine.CheckpointStats
	Elapsed        hw.Metrics
}

// Replica is one log-shipping follower: it buffers the primary's durable
// segment bytes as they arrive, applies committed transactions in commit
// order (eagerly or lazily per ReplicaConfig), and can be promoted to a
// standalone primary. All methods are safe for concurrent use; the serve
// loop and the control plane (Status, Promote) synchronize on one mutex.
type Replica struct {
	ID      int
	factory DBFactory
	cfg     ReplicaConfig

	mu             sync.Mutex
	db             *engine.DB
	th             *hw.Thread
	epoch          uint64
	segBase        uint64 // commit count below the current segment (its checkpoint's SnapshotTS)
	recv           []byte // received bytes of the current segment image
	appliedCommits uint64 // absolute commit count applied
	appliedRecords int    // write records applied from the current segment
	appliedBytes   int    // valid-prefix bytes covered by the last apply
	appends        int    // append frames received this epoch
	reseeds        int
	promoted       bool
	serveErr       error
}

// NewReplica builds a follower over a fresh engine from factory.
func NewReplica(id int, factory DBFactory, cfg ReplicaConfig) (*Replica, error) {
	db, err := factory()
	if err != nil {
		return nil, fmt.Errorf("repl: replica %d factory: %w", id, err)
	}
	return &Replica{
		ID:      id,
		factory: factory,
		cfg:     cfg,
		db:      db,
		th:      hw.NewThread(db.Machine.CPU),
	}, nil
}

// DB returns the replica's engine (read-only for callers while shipping is
// active; fully owned by the caller after Promote).
func (r *Replica) DB() *engine.DB {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// Err returns the protocol error that stopped the serve loop, if any.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.serveErr
}

// tables maps table IDs to the replica engine's storage, the form the WAL
// replayers consume. Callers hold r.mu.
func (r *Replica) tables() map[int32]*storage.Table {
	out := make(map[int32]*storage.Table)
	for _, name := range r.db.Catalog.Tables() {
		if t := r.db.Table(name); t != nil {
			out[int32(t.Meta.ID)] = t
		}
	}
	return out
}

// HandleFrame processes one shipped frame and returns the ack the primary
// is waiting for: received byte count in Offset, applied commit count in
// the payload.
func (r *Replica) HandleFrame(f ShipFrame) (ShipFrame, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return ShipFrame{}, fmt.Errorf("repl: replica %d already promoted", r.ID)
	}
	switch f.Type {
	case ShipSnapshot:
		if err := r.reseed(f); err != nil {
			return ShipFrame{}, err
		}
	case ShipAppend:
		if err := r.append(f); err != nil {
			return ShipFrame{}, err
		}
	default:
		return ShipFrame{}, fmt.Errorf("repl: replica %d: unexpected frame type %d", r.ID, f.Type)
	}
	var applied [8]byte
	binary.LittleEndian.PutUint64(applied[:], r.appliedCommits)
	return ShipFrame{
		Type:    ShipAck,
		Epoch:   r.epoch,
		Offset:  uint64(len(r.recv)),
		Payload: applied[:],
	}, nil
}

// reseed replaces the replica's state from a shipped checkpoint image: the
// crash-recovery path on a fresh engine, run because the primary truncated
// the log history this replica was following.
func (r *Replica) reseed(f ShipFrame) error {
	db, err := r.factory()
	if err != nil {
		return fmt.Errorf("repl: replica %d reseed factory: %w", r.ID, err)
	}
	if _, err := db.RecoverImages(r.th, f.Payload, nil); err != nil {
		return fmt.Errorf("repl: replica %d reseed: %w", r.ID, err)
	}
	r.db = db
	r.epoch = f.Epoch
	r.segBase = db.Txns.LastCommitTS()
	r.appliedCommits = r.segBase
	r.recv = r.recv[:0]
	r.appliedRecords, r.appliedBytes, r.appends = 0, 0, 0
	r.reseeds++
	return nil
}

// append extends the received segment image and applies the backlog when
// the lazy-apply cadence says so. Receiving is charged as a buffered
// sequential write of the shipped bytes.
func (r *Replica) append(f ShipFrame) error {
	if f.Epoch != r.epoch {
		return fmt.Errorf("repl: replica %d at epoch %d got append for epoch %d without a snapshot",
			r.ID, r.epoch, f.Epoch)
	}
	if f.Offset != uint64(len(r.recv)) {
		return fmt.Errorf("repl: replica %d received %d bytes but append starts at %d",
			r.ID, len(r.recv), f.Offset)
	}
	r.th.Alloc(float64(len(f.Payload)))
	r.th.SeqWrite(float64(len(f.Payload))/64, 64)
	r.recv = append(r.recv, f.Payload...)
	r.appends++
	if every := r.cfg.ApplyEvery; every <= 1 || r.appends%every == 0 {
		return r.applyPending()
	}
	return nil
}

// applyPending replays the unseen committed suffix of the received image
// onto the replica's tables, charging the parse and every applied write to
// the replica's thread. Callers hold r.mu.
func (r *Replica) applyPending() error {
	_, body, torn, err := wal.ParseSegment(r.recv)
	if err != nil {
		return fmt.Errorf("repl: replica %d segment parse: %w", r.ID, err)
	}
	if torn {
		// The segment header is not complete yet: nothing to apply.
		return nil
	}
	records, consumed, _ := wal.DeserializePrefix(body)
	validBytes := len(r.recv) - len(body) + consumed
	if newBytes := validBytes - r.appliedBytes; newBytes > 0 {
		r.th.SeqRead(float64(newBytes)/64, 64)
	}
	applied, newBase, err := wal.ReplayRange(r.th, records, r.tables(), r.appliedCommits, r.segBase)
	if err != nil {
		return fmt.Errorf("repl: replica %d apply: %w", r.ID, err)
	}
	r.appliedRecords += applied
	r.appliedBytes = validBytes
	r.appliedCommits = newBase
	r.db.Txns.AdvanceTo(newBase)
	return nil
}

// Status reports the replica's staleness. It parses the received image with
// the same tolerant parsers the apply path uses, so the pending counts are
// exact, but charges nothing: staleness inspection is control-plane work.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		ID:              r.ID,
		Epoch:           r.epoch,
		ReceivedBytes:   len(r.recv),
		ReceivedCommits: r.segBase,
		AppliedCommits:  r.appliedCommits,
		Reseeds:         r.reseeds,
		Metrics:         r.th.Since(hw.Counters{}),
	}
	if _, body, torn, err := wal.ParseSegment(r.recv); err == nil && !torn {
		records, consumed, _ := wal.DeserializePrefix(body)
		st.ReceivedCommits = r.segBase + wal.NumCommitted(records)
		st.PendingRecords = len(records) - r.appliedRecords
		st.PendingBytes = len(r.recv) - len(body) + consumed - r.appliedBytes
	}
	st.PendingCommits = st.ReceivedCommits - st.AppliedCommits
	for _, name := range r.db.Catalog.Tables() {
		t := r.db.Table(name)
		if t == nil {
			continue
		}
		rows := int(t.NumRows())
		st.Rows += rows
		for _, im := range r.db.Catalog.TableIndexes(t.Meta.ID) {
			st.Indexes++
			st.IndexKeyBytes += rows * 8 * len(im.KeyCols)
		}
	}
	return st
}

// Promote turns the replica into a standalone primary: it applies the whole
// received backlog, rebuilds every secondary index, and writes an
// establishing checkpoint, charging all three phases — the REPLAY,
// INDEX_REBUILD, and CHECKPOINT operating units — to the replica's thread.
// Ship traffic must have stopped (close the group first); after a
// successful promotion the replica refuses further frames.
func (r *Replica) Promote() (PromoteStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return PromoteStats{}, fmt.Errorf("repl: replica %d already promoted", r.ID)
	}
	start := r.th.Counters()
	before := r.appliedRecords
	if err := r.applyPending(); err != nil {
		return PromoteStats{}, err
	}
	st := PromoteStats{ID: r.ID, AppliedRecords: r.appliedRecords - before, Commits: r.appliedCommits}
	st.IndexesRebuilt, st.IndexRows = r.db.RebuildIndexes(r.th)
	ck, err := r.db.Checkpoint(r.th)
	if err != nil {
		return PromoteStats{}, fmt.Errorf("repl: replica %d establishing checkpoint: %w", r.ID, err)
	}
	st.Checkpoint = ck
	st.Elapsed = r.th.Since(start)
	r.promoted = true
	return st, nil
}
