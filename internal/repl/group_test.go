package repl

import (
	"fmt"
	"hash/fnv"
	"testing"

	"mb2/internal/catalog"
	"mb2/internal/engine"
	"mb2/internal/server"
	"mb2/internal/storage"
	"mb2/internal/wal"
)

// kvFactory builds the replicated schema: one table with a primary-key
// index, so promotion exercises the index rebuild.
func kvFactory() (*engine.DB, error) {
	db := engine.OpenOnDevices(catalog.DefaultKnobs(), nil, nil)
	sch := catalog.NewSchema(
		catalog.Column{Name: "k", Type: catalog.Int64},
		catalog.Column{Name: "v", Type: catalog.Int64},
	)
	if _, err := db.CreateTable("kv", sch); err != nil {
		return nil, err
	}
	if _, _, err := db.CreateIndex(nil, db.Machine.CPU, "kv_pk", "kv",
		[]string{"k"}, true, 1); err != nil {
		return nil, err
	}
	return db, nil
}

// commitKV runs one insert-and-commit transaction through the logged path.
func commitKV(db *engine.DB, k, v int64) error {
	tbl := db.Table("kv")
	tx := db.Txns.Begin(nil)
	data := storage.Tuple{storage.NewInt(k), storage.NewInt(v)}
	row := tbl.Insert(nil, tx.ID, data)
	tx.RecordWrite(tbl, row, data)
	if err := db.WAL.Enqueue(nil, wal.Record{Type: wal.RecordInsert, TxnID: tx.ID,
		TableID: int32(tbl.Meta.ID), Row: int64(row), Payload: data}); err != nil {
		return err
	}
	_, err := db.CommitLogged(tx, nil)
	return err
}

// shipRun drives txns committed transactions on a fresh primary, flushing
// and syncing the group every flushEvery commits, checkpointing once after
// ckptAfter commits (0 disables). It returns the primary.
func shipRun(t *testing.T, g func(db *engine.DB) *Group, txns, flushEvery, ckptAfter int) (*engine.DB, *Group) {
	t.Helper()
	db, err := kvFactory()
	if err != nil {
		t.Fatal(err)
	}
	grp := g(db)
	for i := 0; i < txns; i++ {
		if err := commitKV(db, int64(i), int64(i*7)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%flushEvery == 0 {
			db.WAL.Serialize(nil)
			if _, err := db.WAL.Flush(nil); err != nil {
				t.Fatal(err)
			}
			if err := grp.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if ckptAfter > 0 && i+1 == ckptAfter {
			if _, err := db.Checkpoint(nil); err != nil {
				t.Fatal(err)
			}
			if err := grp.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.WAL.Serialize(nil)
	if _, err := db.WAL.Flush(nil); err != nil {
		t.Fatal(err)
	}
	// Two final syncs so every cadence-lagged replica receives the tail.
	if err := grp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := grp.Sync(); err != nil {
		t.Fatal(err)
	}
	return db, grp
}

// stateDigest renders the committed kv rows at the engine's last commit
// timestamp into an order-independent digest.
func stateDigest(t *testing.T, db *engine.DB) uint64 {
	t.Helper()
	tbl := db.Table("kv")
	ts := db.Txns.LastCommitTS()
	h := fnv.New64a()
	tbl.Scan(nil, 0, ts, func(row storage.RowID, data storage.Tuple) bool {
		fmt.Fprintf(h, "%d=%d,%d;", row, data[0].I, data[1].I)
		return true
	})
	return h.Sum64()
}

func TestGroupShipsAppliesAndPromotes(t *testing.T) {
	cfg := GroupConfig{Replicas: 3, Cadence: []int{1, 2, 1}, ApplyEvery: []int{1, 1, 4}}
	db, grp := shipRun(t, func(db *engine.DB) *Group {
		g, err := NewGroup(db, kvFactory, server.NewPipe(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}, 20, 3, 0)
	defer grp.Close()

	commits := db.Txns.LastCommitTS()
	if commits != 20 {
		t.Fatalf("primary committed %d, want 20", commits)
	}
	sts := grp.Status()
	// Every replica received the whole durable image after the final syncs.
	for _, st := range sts {
		if st.ReceivedBytes != len(db.WAL.Durable()) {
			t.Fatalf("replica %d received %d of %d durable bytes", st.ID, st.ReceivedBytes, len(db.WAL.Durable()))
		}
		if st.ReceivedCommits != commits {
			t.Fatalf("replica %d received %d commits, want %d", st.ID, st.ReceivedCommits, commits)
		}
	}
	// Eager replicas are fully applied; the lazy one has a real backlog.
	if sts[0].AppliedCommits != commits || sts[0].PendingCommits != 0 {
		t.Fatalf("eager replica 0: %+v", sts[0])
	}
	if sts[2].PendingCommits == 0 || sts[2].PendingRecords == 0 || sts[2].PendingBytes == 0 {
		t.Fatalf("lazy replica 2 has no backlog: %+v", sts[2])
	}
	// Receive and apply work was charged to the replicas' own threads, and
	// the lazy replica — having applied less — is cheaper so far.
	if sts[0].Metrics.ElapsedUS <= 0 || sts[2].Metrics.ElapsedUS <= 0 {
		t.Fatalf("uncharged replica threads: %v vs %v", sts[0].Metrics.ElapsedUS, sts[2].Metrics.ElapsedUS)
	}
	if sts[2].Metrics.ElapsedUS >= sts[0].Metrics.ElapsedUS {
		t.Fatalf("lazy replica charged %v us, eager %v us", sts[2].Metrics.ElapsedUS, sts[0].Metrics.ElapsedUS)
	}
	if acks := grp.AckedCommits(); acks[0] != commits || acks[2] >= commits {
		t.Fatalf("primary-side ack view: %v", acks)
	}

	// Promote the lazy replica: the backlog replays, indexes rebuild, a
	// checkpoint establishes the new primary, and the state matches.
	if err := grp.Close(); err != nil {
		t.Fatal(err)
	}
	rep := grp.Replicas()[2]
	ps, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Commits != commits || ps.AppliedRecords == 0 {
		t.Fatalf("promotion: %+v", ps)
	}
	if ps.IndexesRebuilt != 1 || ps.IndexRows != 20 {
		t.Fatalf("index rebuild: %+v", ps)
	}
	if ps.Checkpoint.Rows != 20 {
		t.Fatalf("establishing checkpoint: %+v", ps.Checkpoint)
	}
	if ps.Elapsed.ElapsedUS <= 0 {
		t.Fatal("promotion cost not charged")
	}
	if got, want := stateDigest(t, rep.DB()), stateDigest(t, db); got != want {
		t.Fatalf("promoted state digest %#x, primary %#x", got, want)
	}
	if _, err := rep.Promote(); err == nil {
		t.Fatal("second promotion must fail")
	}
}

// A primary checkpoint truncates the log and opens a new epoch: the next
// sync must re-seed every replica from the checkpoint image, after which
// shipping continues on the new segment.
func TestGroupReseedsAcrossCheckpoint(t *testing.T) {
	cfg := GroupConfig{Replicas: 2, ApplyEvery: []int{1, 3}}
	db, grp := shipRun(t, func(db *engine.DB) *Group {
		g, err := NewGroup(db, kvFactory, server.NewPipe(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}, 18, 2, 8)
	defer grp.Close()

	commits := db.Txns.LastCommitTS()
	for _, st := range grp.Status() {
		if st.Reseeds != 1 {
			t.Fatalf("replica %d reseeded %d times, want 1", st.ID, st.Reseeds)
		}
		if st.Epoch != db.WAL.Epoch() {
			t.Fatalf("replica %d at epoch %d, primary %d", st.ID, st.Epoch, db.WAL.Epoch())
		}
		if st.ReceivedCommits != commits {
			t.Fatalf("replica %d received %d commits, want %d", st.ID, st.ReceivedCommits, commits)
		}
	}
	if err := grp.Close(); err != nil {
		t.Fatal(err)
	}
	for _, rep := range grp.Replicas() {
		ps, err := rep.Promote()
		if err != nil {
			t.Fatal(err)
		}
		if ps.Commits != commits {
			t.Fatalf("replica %d promoted at %d commits, want %d", rep.ID, ps.Commits, commits)
		}
		if got, want := stateDigest(t, rep.DB()), stateDigest(t, db); got != want {
			t.Fatalf("replica %d state digest %#x, primary %#x", rep.ID, got, want)
		}
	}
}

// The whole ship/apply/promote pipeline is deterministic: two identical
// pipe runs and a TCP run produce bit-identical replica staleness and
// promoted state.
func TestGroupDeterministicAcrossRunsAndTransports(t *testing.T) {
	run := func(tr func() server.Transport) (statuses []Status, promoted uint64) {
		cfg := GroupConfig{Replicas: 2, Cadence: []int{1, 2}, ApplyEvery: []int{1, 3}}
		db, grp := shipRun(t, func(db *engine.DB) *Group {
			g, err := NewGroup(db, kvFactory, tr(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, 16, 3, 7)
		defer grp.Close()
		statuses = grp.Status()
		if err := grp.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := grp.Replicas()[1].Promote(); err != nil {
			t.Fatal(err)
		}
		_ = db
		return statuses, stateDigest(t, grp.Replicas()[1].DB())
	}

	s1, p1 := run(func() server.Transport { return server.NewPipe() })
	s2, p2 := run(func() server.Transport { return server.NewPipe() })
	s3, p3 := run(func() server.Transport { return server.NewTCP("127.0.0.1:0") })
	if p1 != p2 || p1 != p3 {
		t.Fatalf("promoted digests diverge: %#x %#x %#x", p1, p2, p3)
	}
	for i := range s1 {
		if s1[i] != s2[i] || s1[i] != s3[i] {
			t.Fatalf("replica %d status diverges:\npipe1 %+v\npipe2 %+v\ntcp   %+v", i, s1[i], s2[i], s3[i])
		}
	}
}
