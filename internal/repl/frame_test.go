package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestShipFrameRoundTrip(t *testing.T) {
	frames := []ShipFrame{
		{Type: ShipAppend, Epoch: 0, Offset: 0, Payload: []byte("wal2")},
		{Type: ShipAppend, Epoch: 7, Offset: 1 << 33, Payload: bytes.Repeat([]byte{0xAB}, 300)},
		{Type: ShipSnapshot, Epoch: 8, Offset: 0, Payload: []byte("checkpoint image")},
		{Type: ShipAck, Epoch: 8, Offset: 42, Payload: []byte{9, 0, 0, 0, 0, 0, 0, 0}},
		{Type: ShipAck},
	}
	var stream []byte
	for _, f := range frames {
		stream = AppendShipFrame(stream, f)
	}

	// Strict walk.
	rest := stream
	for i, want := range frames {
		got, n, err := DecodeShipFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Epoch != want.Epoch ||
			got.Offset != want.Offset || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d round trip: got %+v want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after strict walk", len(rest))
	}

	// Tolerant walk consumes everything without a stop reason.
	parsed, consumed, reason := DecodeShipPrefix(stream)
	if consumed != len(stream) || reason != "" || len(parsed) != len(frames) {
		t.Fatalf("prefix: %d frames, %d/%d bytes, reason %q",
			len(parsed), consumed, len(stream), reason)
	}

	// io round trip.
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteShipFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadShipFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Epoch != want.Epoch ||
			got.Offset != want.Offset || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("io frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadShipFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream: err = %v, want io.EOF", err)
	}
}

// Every corruption a wire can inflict maps to its specific sentinel, and a
// bit flip anywhere in the semantic fields is caught by the CRC.
func TestShipFrameCorruption(t *testing.T) {
	base := AppendShipFrame(nil, ShipFrame{Type: ShipAppend, Epoch: 5, Offset: 99, Payload: []byte("payload")})

	mut := func(i int, b byte) []byte {
		c := append([]byte(nil), base...)
		c[i] = b
		return c
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"short header", base[:ShipHeaderSize-1], ErrShipTruncated},
		{"short payload", base[:len(base)-1], ErrShipTruncated},
		{"bad magic", mut(0, 0xB2), ErrShipMagic},
		{"bad version", mut(1, 9), ErrShipVersion},
		{"reserved set", mut(3, 1), ErrShipReserved},
		{"type flip", mut(2, ShipAck), ErrShipCRC},
		{"epoch flip", mut(4, 0xFF), ErrShipCRC},
		{"offset flip", mut(13, 0xFF), ErrShipCRC},
		{"payload flip", mut(ShipHeaderSize, 'X'), ErrShipCRC},
		{"crc flip", mut(24, base[24]^0x01), ErrShipCRC},
	}
	for _, tc := range cases {
		if _, _, err := DecodeShipFrame(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		// The tolerant parser stops at the corruption with that reason.
		frames, consumed, reason := DecodeShipPrefix(tc.buf)
		if len(frames) != 0 || consumed != 0 || reason != tc.want.Error() {
			t.Errorf("%s: prefix = %d frames, %d bytes, %q", tc.name, len(frames), consumed, reason)
		}
	}

	// A corrupt length field surfaces as too-large, before any allocation.
	huge := mut(23, 0xFF)
	if _, _, err := DecodeShipFrame(huge); !errors.Is(err, ErrShipTooLarge) {
		t.Fatalf("oversize length: %v", err)
	}
	if _, err := ReadShipFrame(bytes.NewReader(huge)); !errors.Is(err, ErrShipTooLarge) {
		t.Fatalf("oversize length via reader: %v", err)
	}
}
