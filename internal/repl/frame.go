package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Ship framing: every replication message travels as one ship frame. The
// layout extends the server's wire frame with the two fields log shipping
// cannot live without — the segment epoch and the byte offset the payload
// starts at — so a replica can detect a truncation it slept through or a
// stream that rewound, without peeking into the payload.
//
//	offset 0  magic      0xB5
//	offset 1  version    1
//	offset 2  type       ShipAppend / ShipSnapshot / ShipAck
//	offset 3  reserved   must be 0
//	offset 4  epoch      u64 LE WAL segment epoch
//	offset 12 offset     u64 LE byte offset of the payload in the image
//	offset 20 length     u32 LE payload byte count
//	offset 24 crc        u32 LE CRC-32C over type, epoch, offset, payload
//	offset 28 payload    raw segment (or checkpoint image) bytes
//
// The CRC covers every semantic field, so a flip in type, epoch, offset, or
// payload is detected; flips in length surface as a CRC mismatch or a
// truncated frame. DecodeShipPrefix mirrors the WAL's tolerant parser: it
// consumes the longest valid frame prefix and reports why it stopped.
const (
	shipMagic   = 0xB5
	shipVersion = 1
	// ShipHeaderSize is the fixed ship-frame header byte count.
	ShipHeaderSize = 28
	// MaxShipPayload caps one frame's payload (16 MiB), like the server's
	// wire frames: a corrupted length cannot force an absurd allocation.
	MaxShipPayload = 1 << 24
)

// Ship frame types.
const (
	// ShipAppend extends the replica's copy of the current segment: the
	// payload is the primary's durable image bytes [Offset, Offset+len).
	ShipAppend = byte(iota + 1)
	// ShipSnapshot re-seeds the replica at an epoch boundary: the payload
	// is the primary's checkpoint-device image, Offset is zero.
	ShipSnapshot
	// ShipAck answers every frame: Offset echoes the replica's received
	// byte count and the payload is its applied commit count (u64 LE).
	ShipAck
)

var shipCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ShipFrame is one replication message.
type ShipFrame struct {
	Type    byte
	Epoch   uint64
	Offset  uint64
	Payload []byte
}

// shipCRC computes the frame CRC: type, epoch, offset, then payload.
func shipCRC(f ShipFrame) uint32 {
	var pre [17]byte
	pre[0] = f.Type
	binary.LittleEndian.PutUint64(pre[1:9], f.Epoch)
	binary.LittleEndian.PutUint64(pre[9:17], f.Offset)
	crc := crc32.Update(0, shipCRCTable, pre[:])
	return crc32.Update(crc, shipCRCTable, f.Payload)
}

// AppendShipFrame appends the encoding of f to dst and returns the result.
func AppendShipFrame(dst []byte, f ShipFrame) []byte {
	var hdr [ShipHeaderSize]byte
	hdr[0] = shipMagic
	hdr[1] = shipVersion
	hdr[2] = f.Type
	hdr[3] = 0
	binary.LittleEndian.PutUint64(hdr[4:12], f.Epoch)
	binary.LittleEndian.PutUint64(hdr[12:20], f.Offset)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(f.Payload)))
	binary.LittleEndian.PutUint32(hdr[24:28], shipCRC(f))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// Ship-frame decoding errors.
var (
	ErrShipTruncated = errors.New("repl: truncated ship frame")
	ErrShipMagic     = errors.New("repl: bad ship frame magic")
	ErrShipVersion   = errors.New("repl: unsupported ship frame version")
	ErrShipReserved  = errors.New("repl: nonzero reserved ship frame byte")
	ErrShipTooLarge  = errors.New("repl: ship frame payload exceeds cap")
	ErrShipCRC       = errors.New("repl: ship frame CRC mismatch")
)

// DecodeShipFrame decodes exactly one frame from the front of b, returning
// it and the bytes consumed. The returned payload aliases b.
func DecodeShipFrame(b []byte) (ShipFrame, int, error) {
	if len(b) < ShipHeaderSize {
		return ShipFrame{}, 0, ErrShipTruncated
	}
	if b[0] != shipMagic {
		return ShipFrame{}, 0, ErrShipMagic
	}
	if b[1] != shipVersion {
		return ShipFrame{}, 0, ErrShipVersion
	}
	if b[3] != 0 {
		return ShipFrame{}, 0, ErrShipReserved
	}
	n := binary.LittleEndian.Uint32(b[20:24])
	if n > MaxShipPayload {
		return ShipFrame{}, 0, ErrShipTooLarge
	}
	total := ShipHeaderSize + int(n)
	if len(b) < total {
		return ShipFrame{}, 0, ErrShipTruncated
	}
	f := ShipFrame{
		Type:    b[2],
		Epoch:   binary.LittleEndian.Uint64(b[4:12]),
		Offset:  binary.LittleEndian.Uint64(b[12:20]),
		Payload: b[ShipHeaderSize:total],
	}
	if shipCRC(f) != binary.LittleEndian.Uint32(b[24:28]) {
		return ShipFrame{}, 0, ErrShipCRC
	}
	return f, total, nil
}

// DecodeShipPrefix parses the longest valid frame prefix of b: the tolerant
// parser. It returns the decoded frames, the bytes consumed, and — when it
// stopped early — the reason. Invariants (pinned by FuzzShipFrame): it never
// panics, the consumed prefix re-encodes byte-identically, and a fully
// consumed input round-trips frame for frame.
func DecodeShipPrefix(b []byte) ([]ShipFrame, int, string) {
	var frames []ShipFrame
	consumed := 0
	for consumed < len(b) {
		f, n, err := DecodeShipFrame(b[consumed:])
		if err != nil {
			return frames, consumed, err.Error()
		}
		frames = append(frames, f)
		consumed += n
	}
	return frames, consumed, ""
}

// WriteShipFrame writes one frame to w.
func WriteShipFrame(w io.Writer, f ShipFrame) error {
	if len(f.Payload) > MaxShipPayload {
		return ErrShipTooLarge
	}
	buf := AppendShipFrame(make([]byte, 0, ShipHeaderSize+len(f.Payload)), f)
	_, err := w.Write(buf)
	return err
}

// ReadShipFrame reads one frame from r, blocking until a whole frame (or an
// error) arrives. Stream corruption surfaces as a decode error.
func ReadShipFrame(r io.Reader) (ShipFrame, error) {
	var hdr [ShipHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return ShipFrame{}, err
	}
	if hdr[0] != shipMagic {
		return ShipFrame{}, ErrShipMagic
	}
	if hdr[1] != shipVersion {
		return ShipFrame{}, ErrShipVersion
	}
	if hdr[3] != 0 {
		return ShipFrame{}, ErrShipReserved
	}
	n := binary.LittleEndian.Uint32(hdr[20:24])
	if n > MaxShipPayload {
		return ShipFrame{}, ErrShipTooLarge
	}
	f := ShipFrame{
		Type:    hdr[2],
		Epoch:   binary.LittleEndian.Uint64(hdr[4:12]),
		Offset:  binary.LittleEndian.Uint64(hdr[12:20]),
		Payload: make([]byte, n),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return ShipFrame{}, fmt.Errorf("%w: %w", ErrShipTruncated, err)
	}
	if shipCRC(f) != binary.LittleEndian.Uint32(hdr[24:28]) {
		return ShipFrame{}, ErrShipCRC
	}
	return f, nil
}
