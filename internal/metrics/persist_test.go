package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mb2/internal/hw"
	"mb2/internal/ou"
)

// TestPersistRoundTrip is a randomized round-trip property test: any
// repository of finite-valued records must survive WriteJSON -> ReadJSON
// exactly (float64 survives encoding/json bit-for-bit for finite values).
func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 25; trial++ {
		src := NewRepository()
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			features := make([]float64, rng.Intn(8))
			for j := range features {
				features[j] = randFinite(rng)
			}
			labels := make([]float64, hw.NumLabels)
			for j := range labels {
				labels[j] = randFinite(rng)
			}
			src.Add(Record{
				Kind:     ou.Kind(rng.Intn(ou.NumKinds)),
				Features: features,
				Labels:   hw.MetricsFromVec(labels),
			})
		}

		var buf bytes.Buffer
		if err := src.WriteJSON(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		dst := NewRepository()
		read, err := dst.ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if read != n {
			t.Fatalf("trial %d: wrote %d records, read back %d", trial, n, read)
		}
		if !reflect.DeepEqual(src.Kinds(), dst.Kinds()) {
			t.Fatalf("trial %d: kinds diverged: %v vs %v", trial, src.Kinds(), dst.Kinds())
		}
		for _, k := range src.Kinds() {
			a, b := src.Records(k), dst.Records(k)
			if len(a) != len(b) {
				t.Fatalf("trial %d: %s has %d records, read back %d", trial, k, len(a), len(b))
			}
			for i := range a {
				if !recordsEqual(a[i], b[i]) {
					t.Fatalf("trial %d: %s record %d diverged:\n wrote %+v\n read  %+v", trial, k, i, a[i], b[i])
				}
			}
		}
	}
}

// recordsEqual compares records treating nil and empty feature slices as
// the same (JSON cannot distinguish them).
func recordsEqual(a, b Record) bool {
	if a.Kind != b.Kind || len(a.Features) != len(b.Features) {
		return false
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			return false
		}
	}
	return a.Labels == b.Labels
}

// randFinite draws from a wide dynamic range, including exact zeros,
// negatives, and subnormal-scale magnitudes, but never NaN/Inf (the
// repository stores measurements, which are always finite).
func randFinite(rng *rand.Rand) float64 {
	switch rng.Intn(5) {
	case 0:
		return 0
	case 1:
		return float64(rng.Intn(1000))
	case 2:
		return -rng.Float64() * 1e6
	case 3:
		return rng.Float64() * math.Ldexp(1, rng.Intn(120)-60)
	default:
		return rng.NormFloat64()
	}
}

// TestReadJSONRejectsBadRecords pins the error paths: unknown OU names and
// wrong label arity must fail loudly, not load silently.
func TestReadJSONRejectsBadRecords(t *testing.T) {
	dst := NewRepository()
	if _, err := dst.ReadJSON(strings.NewReader(`{"ou":"NO_SUCH_OU","features":[],"labels":[]}`)); err == nil {
		t.Error("unknown OU name accepted")
	}
	dst = NewRepository()
	if _, err := dst.ReadJSON(strings.NewReader(`{"ou":"SEQ_SCAN","features":[1],"labels":[1,2]}`)); err == nil {
		t.Error("wrong label arity accepted")
	}
}
