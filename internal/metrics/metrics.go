// Package metrics implements MB2's lightweight data-collection
// infrastructure (Sec 6.1): the resource tracker that brackets OU
// invocations, decentralized thread-local collectors, the aggregator that
// drains them into the training-data repository, and the robust-statistics
// label derivation (20% trimmed mean, Sec 6.2).
package metrics

import (
	"math/rand"
	"sort"
	"sync"

	"mb2/internal/hw"
	"mb2/internal/ou"
)

// Record is one observed OU invocation: its input features and measured
// output labels.
type Record struct {
	Kind     ou.Kind
	Features []float64
	Labels   hw.Metrics
}

// Collector is the thread-local metrics buffer one worker writes to.
//
// # Concurrency contract
//
// Every method is safe for concurrent use; a mutex guards all state. The
// Emit-vs-Drain contract is exactly-once delivery: each record passed to
// Emit appears in the result of exactly one Drain call — never lost,
// never duplicated — because Drain atomically takes the buffer and
// resets it under the same lock Emit appends under. Records from a
// single emitting goroutine appear in emission order within and across
// drains. The intended discipline is still one writer per collector
// (the parallel runner pipeline gives every sweep unit and every
// measurement repetition its own, which also fixes the global record
// order); multiple concurrent writers are memory-safe but interleave in
// an unspecified order.
type Collector struct {
	mu      sync.Mutex
	enabled map[ou.Kind]bool // nil means everything enabled
	all     bool
	records []Record

	// Measurement noise emulates the jitter of real hardware counters so
	// the trimmed-mean machinery has something to be robust against. Zero
	// scale (the default) keeps collection deterministic.
	noiseScale float64
	rng        *rand.Rand
}

// NewCollector returns a collector with tracking enabled for every OU.
func NewCollector() *Collector {
	return &Collector{all: true}
}

// EnableOnly restricts tracking to the given OUs — the paper's mechanism
// for cutting tracker overhead while exercising one component (Sec 6.1).
func (c *Collector) EnableOnly(kinds ...ou.Kind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.all = false
	c.enabled = make(map[ou.Kind]bool, len(kinds))
	for _, k := range kinds {
		c.enabled[k] = true
	}
}

// EnableAll re-enables tracking for every OU.
func (c *Collector) EnableAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.all = true
	c.enabled = nil
}

// SetNoise turns on multiplicative Gaussian measurement noise with the
// given relative scale and deterministic seed.
func (c *Collector) SetNoise(scale float64, seed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noiseScale = scale
	c.rng = rand.New(rand.NewSource(seed))
}

// Enabled reports whether the OU is currently tracked.
func (c *Collector) Enabled(k ou.Kind) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.all || c.enabled[k]
}

// Emit records one OU invocation. Disabled OUs are dropped.
func (c *Collector) Emit(k ou.Kind, features []float64, labels hw.Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !(c.all || c.enabled[k]) {
		return
	}
	if c.noiseScale > 0 && c.rng != nil {
		// Real counter noise is heavy-tailed and one-sided: small Gaussian
		// jitter most of the time, with occasional large positive spikes
		// from preemptions and kernel tasks (Sec 6.2's motivation for
		// robust statistics).
		jitter := 1 + 0.2*c.noiseScale*c.rng.NormFloat64()
		if jitter < 0 {
			jitter = 0
		}
		spike := 1.0
		if c.rng.Float64() < 0.15*c.noiseScale {
			spike = 1 + 10*c.noiseScale*c.rng.Float64()
		}
		v := labels.Vec()
		for i := range v {
			v[i] *= jitter * spike
		}
		labels = hw.MetricsFromVec(v)
	}
	c.records = append(c.records, Record{Kind: k, Features: features, Labels: labels})
}

// Drain removes and returns everything collected so far.
func (c *Collector) Drain() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.records
	c.records = nil
	return out
}

// Len returns the number of buffered records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Tracker brackets one OU invocation on a thread: Start snapshots the
// counters, Stop derives the labels and emits the record. Each
// Start/Stop pair models one resource-tracker invocation (Sec 6.1).
type Tracker struct {
	collector *Collector
	thread    *hw.Thread
}

// NewTracker binds a collector and a hardware thread.
func NewTracker(c *Collector, th *hw.Thread) *Tracker {
	return &Tracker{collector: c, thread: th}
}

// Thread returns the underlying hardware thread.
func (t *Tracker) Thread() *hw.Thread { return t.thread }

// Collector returns the underlying collector.
func (t *Tracker) Collector() *Collector { return t.collector }

// Start begins tracking one OU invocation. The tracker itself costs a
// little work, as the paper measures (~20us per invocation, Sec 8.1).
func (t *Tracker) Start() hw.Counters {
	if t.thread == nil {
		return hw.Counters{}
	}
	t.thread.Compute(300) // reading counters is not free
	return t.thread.Counters()
}

// Stop finishes tracking and emits the record.
func (t *Tracker) Stop(k ou.Kind, features []float64, start hw.Counters) hw.Metrics {
	var labels hw.Metrics
	if t.thread != nil {
		labels = t.thread.Since(start)
		t.thread.Compute(300)
	}
	if t.collector != nil {
		t.collector.Emit(k, features, labels)
	}
	return labels
}

// Repository is MB2's training-data store: records grouped per OU, fed by
// the aggregator.
type Repository struct {
	mu   sync.Mutex
	data map[ou.Kind][]Record
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{data: make(map[ou.Kind][]Record)}
}

// Aggregate drains the collectors into the repository (the dedicated
// aggregator thread of Sec 6.1).
func (r *Repository) Aggregate(collectors ...*Collector) int {
	total := 0
	for _, c := range collectors {
		recs := c.Drain()
		total += len(recs)
		r.mu.Lock()
		for _, rec := range recs {
			r.data[rec.Kind] = append(r.data[rec.Kind], rec)
		}
		r.mu.Unlock()
	}
	return total
}

// Add inserts records directly (used by runners that pre-derive labels).
func (r *Repository) Add(recs ...Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range recs {
		r.data[rec.Kind] = append(r.data[rec.Kind], rec)
	}
}

// Merge appends every record of other into r, preserving other's per-kind
// record order. Merging per-unit repositories in deterministic unit order
// reproduces, per kind, exactly the record order a serial run would have
// produced — the invariant the parallel runner pipeline relies on, since
// downstream shuffles and splits key off record positions.
func (r *Repository) Merge(other *Repository) {
	if other == nil || other == r {
		return
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, recs := range other.data {
		r.data[k] = append(r.data[k], recs...)
	}
}

// Records returns the stored records for one OU.
func (r *Repository) Records(k ou.Kind) []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, len(r.data[k]))
	copy(out, r.data[k])
	return out
}

// NumRecords returns the total record count across OUs.
func (r *Repository) NumRecords() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, recs := range r.data {
		n += len(recs)
	}
	return n
}

// Kinds returns the OUs with at least one record.
func (r *Repository) Kinds() []ou.Kind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ou.Kind, 0, len(r.data))
	for k := range r.data {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SizeBytes estimates the repository's storage footprint (Table 2's data
// size column): features and labels as float64s plus record overhead.
func (r *Repository) SizeBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, recs := range r.data {
		for _, rec := range recs {
			n += 8*(len(rec.Features)+hw.NumLabels) + 16
		}
	}
	return n
}

// TrimmedMean returns the mean of the middle portion of xs after trimming
// the given fraction from each tail: the robust statistic MB2 derives
// labels with (20% trim, breakdown point 0.4; Sec 6.2).
func TrimmedMean(xs []float64, trim float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	k := int(float64(len(sorted)) * trim)
	kept := sorted[k : len(sorted)-k]
	if len(kept) == 0 {
		kept = sorted[len(sorted)/2 : len(sorted)/2+1]
	}
	sum := 0.0
	for _, v := range kept {
		sum += v
	}
	return sum / float64(len(kept))
}

// TrimmedMeanLabels reduces repeated measurements of one OU invocation to a
// single label vector via the per-label trimmed mean.
func TrimmedMeanLabels(ms []hw.Metrics, trim float64) hw.Metrics {
	if len(ms) == 0 {
		return hw.Metrics{}
	}
	var out [hw.NumLabels]float64
	col := make([]float64, len(ms))
	for l := 0; l < hw.NumLabels; l++ {
		for i, m := range ms {
			col[i] = m.Vec()[l]
		}
		out[l] = TrimmedMean(col, trim)
	}
	return hw.MetricsFromVec(out[:])
}
