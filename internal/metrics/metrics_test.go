package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mb2/internal/hw"
	"mb2/internal/ou"
)

func TestCollectorEmitDrain(t *testing.T) {
	c := NewCollector()
	c.Emit(ou.SeqScan, []float64{10, 2}, hw.Metrics{ElapsedUS: 5})
	c.Emit(ou.SortBuild, []float64{20}, hw.Metrics{ElapsedUS: 7})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	recs := c.Drain()
	if len(recs) != 2 || recs[0].Kind != ou.SeqScan || recs[1].Labels.ElapsedUS != 7 {
		t.Fatalf("drain wrong: %+v", recs)
	}
	if c.Len() != 0 {
		t.Fatal("drain must empty the collector")
	}
}

func TestEnableOnlyFilters(t *testing.T) {
	c := NewCollector()
	c.EnableOnly(ou.SeqScan)
	if !c.Enabled(ou.SeqScan) || c.Enabled(ou.SortBuild) {
		t.Fatal("EnableOnly filter wrong")
	}
	c.Emit(ou.SortBuild, nil, hw.Metrics{})
	c.Emit(ou.SeqScan, nil, hw.Metrics{})
	if c.Len() != 1 {
		t.Fatalf("filtered Len = %d", c.Len())
	}
	c.EnableAll()
	if !c.Enabled(ou.SortBuild) {
		t.Fatal("EnableAll failed")
	}
}

func TestNoiseIsDeterministicAndNonNegative(t *testing.T) {
	run := func() []Record {
		c := NewCollector()
		c.SetNoise(0.3, 42)
		for i := 0; i < 50; i++ {
			c.Emit(ou.SeqScan, nil, hw.Metrics{ElapsedUS: 10, Cycles: 100})
		}
		return c.Drain()
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Labels != b[i].Labels {
			t.Fatal("noise must be deterministic under a fixed seed")
		}
		if a[i].Labels.ElapsedUS < 0 {
			t.Fatal("noisy labels must stay non-negative")
		}
	}
	// Noise must actually perturb.
	same := true
	for _, r := range a {
		if r.Labels.ElapsedUS != 10 {
			same = false
		}
	}
	if same {
		t.Fatal("noise had no effect")
	}
}

func TestTrackerBracketsWork(t *testing.T) {
	c := NewCollector()
	th := hw.NewThread(hw.DefaultCPU())
	tr := NewTracker(c, th)
	start := tr.Start()
	th.Compute(1e6)
	labels := tr.Stop(ou.Arithmetic, ou.ArithmeticFeatures(1e6, false), start)
	if labels.Instructions < 1e6 {
		t.Fatalf("tracker lost work: %v", labels.Instructions)
	}
	recs := c.Drain()
	if len(recs) != 1 || recs[0].Kind != ou.Arithmetic {
		t.Fatalf("tracker record wrong: %+v", recs)
	}
	// Tracker overhead exists but is small relative to the tracked work.
	if labels.Instructions > 1.01e6 {
		t.Fatalf("tracker overhead too large: %v", labels.Instructions)
	}
}

func TestRepositoryAggregate(t *testing.T) {
	repo := NewRepository()
	c1, c2 := NewCollector(), NewCollector()
	c1.Emit(ou.SeqScan, []float64{1}, hw.Metrics{})
	c1.Emit(ou.GC, []float64{2}, hw.Metrics{})
	c2.Emit(ou.SeqScan, []float64{3}, hw.Metrics{})
	n := repo.Aggregate(c1, c2)
	if n != 3 || repo.NumRecords() != 3 {
		t.Fatalf("aggregate count %d, repo %d", n, repo.NumRecords())
	}
	if got := repo.Records(ou.SeqScan); len(got) != 2 {
		t.Fatalf("SeqScan records = %d", len(got))
	}
	kinds := repo.Kinds()
	if len(kinds) != 2 || kinds[0] != ou.SeqScan || kinds[1] != ou.GC {
		t.Fatalf("kinds = %v", kinds)
	}
	if repo.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestTrimmedMeanRobustToOutliers(t *testing.T) {
	xs := []float64{10, 10, 10, 10, 10, 10, 10, 10, 1e9, 1e9}
	got := TrimmedMean(xs, 0.2)
	if got != 10 {
		t.Fatalf("trimmed mean = %v, want 10", got)
	}
	if TrimmedMean(nil, 0.2) != 0 {
		t.Fatal("empty input must be 0")
	}
	if TrimmedMean([]float64{5}, 0.2) != 5 {
		t.Fatal("single element wrong")
	}
}

func TestTrimmedMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep values in a range where summation cannot overflow;
			// metric labels are physical quantities, not float extremes.
			v = math.Mod(v, 1e12)
			xs = append(xs, v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := TrimmedMean(xs, 0.2)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrimmedMeanLabels(t *testing.T) {
	ms := []hw.Metrics{
		{ElapsedUS: 10}, {ElapsedUS: 10}, {ElapsedUS: 10},
		{ElapsedUS: 10}, {ElapsedUS: 1e6},
	}
	got := TrimmedMeanLabels(ms, 0.2)
	if got.ElapsedUS != 10 {
		t.Fatalf("label trimmed mean = %v", got.ElapsedUS)
	}
	if TrimmedMeanLabels(nil, 0.2) != (hw.Metrics{}) {
		t.Fatal("empty labels must be zero")
	}
}

func TestRepositoryJSONRoundTrip(t *testing.T) {
	repo := NewRepository()
	repo.Add(
		Record{Kind: ou.SeqScan, Features: []float64{100, 4, 32, 0, 0, 1, 0},
			Labels: hw.Metrics{ElapsedUS: 12.5, Cycles: 27500, MemoryBytes: 64}},
		Record{Kind: ou.GC, Features: []float64{3, 7, 1000},
			Labels: hw.Metrics{ElapsedUS: 2, MemoryBytes: -128}},
	)
	var buf strings.Builder
	if err := repo.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back := NewRepository()
	n, err := back.ReadJSON(strings.NewReader(buf.String()))
	if err != nil || n != 2 {
		t.Fatalf("read %d records, err %v", n, err)
	}
	for _, kind := range repo.Kinds() {
		want := repo.Records(kind)
		got := back.Records(kind)
		if len(got) != len(want) {
			t.Fatalf("%v: %d records, want %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i].Labels != want[i].Labels {
				t.Fatalf("%v record %d labels %v != %v", kind, i, got[i].Labels, want[i].Labels)
			}
			for j := range want[i].Features {
				if got[i].Features[j] != want[i].Features[j] {
					t.Fatalf("feature mismatch")
				}
			}
		}
	}
}

func TestRepositoryJSONErrors(t *testing.T) {
	back := NewRepository()
	if _, err := back.ReadJSON(strings.NewReader(`{"ou":"NOPE","features":[],"labels":[0,0,0,0,0,0,0,0,0]}`)); err == nil {
		t.Fatal("unknown OU must error")
	}
	if _, err := back.ReadJSON(strings.NewReader(`{"ou":"SEQ_SCAN","features":[],"labels":[1]}`)); err == nil {
		t.Fatal("short label vector must error")
	}
	if _, err := back.ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage must error")
	}
}
