package metrics

import (
	"sync"
	"testing"

	"mb2/internal/hw"
	"mb2/internal/ou"
)

// TestCollectorEmitDrainHammer hammers the Emit-vs-Drain contract under
// the race detector: several writers emit tagged records while a drainer
// concurrently empties the collector. Exactly-once delivery means every
// record surfaces in exactly one drain, and each writer's records stay in
// emission order across drains.
func TestCollectorEmitDrainHammer(t *testing.T) {
	const writers = 8
	const perWriter = 500

	c := NewCollector()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; seq < perWriter; seq++ {
				c.Emit(ou.SeqScan,
					[]float64{float64(w), float64(seq)},
					hw.Metrics{ElapsedUS: 1})
			}
		}(w)
	}

	var drained []Record
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			drained = append(drained, c.Drain()...)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	drained = append(drained, c.Drain()...) // sweep the tail

	if got, want := len(drained), writers*perWriter; got != want {
		t.Fatalf("drained %d records, want %d (lost or duplicated)", got, want)
	}
	nextSeq := make([]int, writers)
	for i, r := range drained {
		w := int(r.Features[0])
		seq := int(r.Features[1])
		if w < 0 || w >= writers {
			t.Fatalf("record %d: bogus writer id %d", i, w)
		}
		if seq != nextSeq[w] {
			t.Fatalf("record %d: writer %d emitted seq %d out of order (want %d)",
				i, w, seq, nextSeq[w])
		}
		nextSeq[w]++
	}
	if c.Len() != 0 {
		t.Fatalf("collector still holds %d records after final drain", c.Len())
	}
}
