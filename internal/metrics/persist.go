package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mb2/internal/hw"
	"mb2/internal/ou"
)

// recordJSON is the on-disk form of one training record: JSON lines keyed
// by OU name, so the training-data repository survives across sessions and
// can be inspected with standard tools.
type recordJSON struct {
	OU       string    `json:"ou"`
	Features []float64 `json:"features"`
	Labels   []float64 `json:"labels"`
}

// WriteJSON streams the repository's records as JSON lines.
func (r *Repository) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, kind := range r.Kinds() {
		for _, rec := range r.Records(kind) {
			if err := enc.Encode(recordJSON{
				OU:       rec.Kind.String(),
				Features: rec.Features,
				Labels:   rec.Labels.Vec(),
			}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSON loads JSON-line records into the repository, returning how many
// were added.
func (r *Repository) ReadJSON(src io.Reader) (int, error) {
	dec := json.NewDecoder(src)
	n := 0
	for {
		var rec recordJSON
		if err := dec.Decode(&rec); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, fmt.Errorf("metrics: decoding record %d: %w", n, err)
		}
		kind, ok := ou.ByName(rec.OU)
		if !ok {
			return n, fmt.Errorf("metrics: record %d names unknown OU %q", n, rec.OU)
		}
		if len(rec.Labels) != hw.NumLabels {
			return n, fmt.Errorf("metrics: record %d has %d labels, want %d",
				n, len(rec.Labels), hw.NumLabels)
		}
		r.Add(Record{Kind: kind, Features: rec.Features, Labels: hw.MetricsFromVec(rec.Labels)})
		n++
	}
}
