// Package par provides the bounded worker pool behind the offline
// pipeline's -j knob. Callers split work into independent units, run them
// with Do, and merge per-unit outputs in deterministic unit order, so the
// parallel result is bit-for-bit identical to the serial one: parallelism
// only changes *when* a unit runs, never what it computes or where its
// output lands.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a jobs setting to a concrete worker count: values <= 0
// select runtime.GOMAXPROCS(0) (the -j default), anything else is taken
// as-is. 1 means serial.
func Resolve(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// Do runs fn(i) for every i in [0, n) on at most Resolve(jobs) workers.
// With an effective worker count of one (or a single unit) it runs inline
// on the calling goroutine — exactly the serial path. Units are claimed
// from an atomic counter, so scheduling is work-stealing but the set of
// executed indices is always [0, n).
//
// fn must not depend on the order or goroutine in which units run; it may
// only write to unit-private state (e.g. slot i of a results slice). If
// units panic, Do waits for the pool to drain and re-panics with the
// lowest-indexed unit's panic value, matching what a serial loop that
// stopped at the first failure would surface.
func Do(jobs, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Resolve(jobs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	next := int64(-1)
	panics := make([]any, n)
	var panicked atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				runUnit(i, fn, panics, &panicked)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
}

// runUnit executes one unit, capturing a panic into its slot instead of
// unwinding the worker goroutine (which would crash the process before the
// pool drains).
func runUnit(i int, fn func(int), panics []any, panicked *atomic.Bool) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
			panicked.Store(true)
		}
	}()
	fn(i)
}
