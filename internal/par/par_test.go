package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, j := range []int{1, 2, 8, 64} {
		if got := Resolve(j); got != j {
			t.Fatalf("Resolve(%d) = %d", j, got)
		}
	}
}

func TestDoCoversAllUnitsExactlyOnce(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		n := 57
		counts := make([]int64, n)
		Do(jobs, n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("jobs=%d: unit %d ran %d times", jobs, i, c)
			}
		}
	}
}

func TestDoZeroAndNegativeN(t *testing.T) {
	ran := false
	Do(4, 0, func(int) { ran = true })
	Do(4, -1, func(int) { ran = true })
	if ran {
		t.Fatal("Do ran units for n <= 0")
	}
}

func TestDoSerialRunsInline(t *testing.T) {
	// jobs=1 must run in submission order on the calling goroutine.
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestDoDeterministicReduction(t *testing.T) {
	// The canonical usage: units write only their own slot; the ordered
	// reduction is identical regardless of worker count.
	n := 64
	ref := make([]int, n)
	Do(1, n, func(i int) { ref[i] = i * i })
	for _, jobs := range []int{2, 8} {
		got := make([]int, n)
		Do(jobs, n, func(i int) { got[i] = i * i })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("jobs=%d: slot %d = %d, want %d", jobs, i, got[i], ref[i])
			}
		}
	}
}

func TestDoPanicPropagatesLowestUnit(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r != "boom 3" {
					t.Fatalf("jobs=%d: recovered %v, want lowest-unit panic \"boom 3\"", jobs, r)
				}
			}()
			Do(jobs, 10, func(i int) {
				if i == 3 {
					panic("boom 3")
				}
				if i == 7 && jobs > 1 {
					panic("boom 7")
				}
			})
			t.Fatalf("jobs=%d: Do did not panic", jobs)
		}()
	}
}
