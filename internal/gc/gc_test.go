package gc

import (
	"testing"

	"mb2/internal/catalog"
	"mb2/internal/hw"
	"mb2/internal/storage"
	"mb2/internal/txn"
)

func setup() (*txn.Manager, *storage.Table, *Collector) {
	mgr := txn.NewManager()
	meta := &catalog.TableMeta{ID: 1, Name: "t", Schema: catalog.NewSchema(
		catalog.Column{Name: "k", Type: catalog.Int64},
		catalog.Column{Name: "v", Type: catalog.Int64},
	)}
	tbl := storage.NewTable(meta)
	c := NewCollector(mgr)
	c.Register(tbl)
	return mgr, tbl, c
}

func TestRunPrunesRetiredVersions(t *testing.T) {
	mgr, tbl, c := setup()

	ins := mgr.Begin(nil)
	row := tbl.Insert(nil, ins.ID, storage.Tuple{storage.NewInt(1), storage.NewInt(0)})
	ins.RecordWrite(tbl, row, nil)
	if _, err := ins.Commit(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tx := mgr.Begin(nil)
		data := storage.Tuple{storage.NewInt(1), storage.NewInt(int64(i))}
		if err := tbl.Update(nil, row, tx.ID, tx.ReadTS, data); err != nil {
			t.Fatal(err)
		}
		tx.RecordWrite(tbl, row, data)
		if _, err := tx.Commit(nil); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.VersionCount() != 11 {
		t.Fatalf("VersionCount = %d", tbl.VersionCount())
	}

	th := hw.NewThread(hw.DefaultCPU())
	st := c.Run(th)
	if st.VersionsPruned != 10 {
		t.Fatalf("pruned %d, want 10", st.VersionsPruned)
	}
	if st.TxnsProcessed != 11 {
		t.Fatalf("txns processed %d, want 11", st.TxnsProcessed)
	}
	if th.Counters().Instructions <= 0 {
		t.Fatal("GC must charge work")
	}
}

func TestRunRespectsActiveSnapshot(t *testing.T) {
	mgr, tbl, c := setup()

	ins := mgr.Begin(nil)
	row := tbl.Insert(nil, ins.ID, storage.Tuple{storage.NewInt(1), storage.NewInt(0)})
	ins.RecordWrite(tbl, row, nil)
	if _, err := ins.Commit(nil); err != nil {
		t.Fatal(err)
	}

	pinned := mgr.Begin(nil) // holds snapshot at ts 1

	for i := 0; i < 5; i++ {
		tx := mgr.Begin(nil)
		data := storage.Tuple{storage.NewInt(1), storage.NewInt(int64(i))}
		if err := tbl.Update(nil, row, tx.ID, tx.ReadTS, data); err != nil {
			t.Fatal(err)
		}
		tx.RecordWrite(tbl, row, data)
		if _, err := tx.Commit(nil); err != nil {
			t.Fatal(err)
		}
	}

	c.Run(nil)
	// Pinned reader must still see its version.
	got, err := tbl.Read(nil, row, pinned.ID, pinned.ReadTS)
	if err != nil || got[1].I != 0 {
		t.Fatalf("GC broke snapshot isolation: %v %v", got, err)
	}

	if _, err := pinned.Commit(nil); err != nil {
		t.Fatal(err)
	}
	st := c.Run(nil)
	if st.VersionsPruned == 0 {
		t.Fatal("post-release GC must prune")
	}
	if tbl.VersionCount() != 1 {
		t.Fatalf("final chain = %d versions", tbl.VersionCount())
	}
}

func TestTxnsProcessedDelta(t *testing.T) {
	mgr, _, c := setup()
	for i := 0; i < 3; i++ {
		tx := mgr.Begin(nil)
		if _, err := tx.Commit(nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Run(nil); st.TxnsProcessed != 3 {
		t.Fatalf("first run processed %d", st.TxnsProcessed)
	}
	if st := c.Run(nil); st.TxnsProcessed != 0 {
		t.Fatalf("idle run processed %d", st.TxnsProcessed)
	}
}
