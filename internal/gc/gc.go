// Package gc implements MVCC garbage collection: the background maintenance
// task that prunes version chains behind the oldest active snapshot. It is
// the paper's garbage-collection batch OU (Table 1) — one of the internal
// operations a self-driving DBMS's models must cover even though no query
// asks for it.
package gc

import (
	"sync"

	"mb2/internal/hw"
	"mb2/internal/storage"
	"mb2/internal/txn"
)

// RunStats summarizes one GC invocation: the batch OU's work volume.
type RunStats struct {
	TxnsProcessed  uint64 // transactions retired since the previous run
	VersionsPruned int
	SlotsExamined  int
}

// Collector prunes version chains across the registered tables.
type Collector struct {
	mgr *txn.Manager

	mu            sync.Mutex
	tables        []*storage.Table
	lastCommitted uint64
}

// NewCollector returns a collector bound to the transaction manager.
func NewCollector(mgr *txn.Manager) *Collector {
	return &Collector{mgr: mgr}
}

// Register adds a table to the collection set.
func (c *Collector) Register(t *storage.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables = append(c.tables, t)
}

// Run performs one garbage-collection pass, charging its work to th.
func (c *Collector) Run(th *hw.Thread) RunStats {
	oldest := c.mgr.OldestActiveTS()

	c.mu.Lock()
	tables := append([]*storage.Table(nil), c.tables...)
	_, committed, aborted := c.mgr.Stats()
	retired := committed + aborted
	processed := retired - c.lastCommitted
	c.lastCommitted = retired
	c.mu.Unlock()

	st := RunStats{TxnsProcessed: processed}
	for _, t := range tables {
		st.VersionsPruned += t.Vacuum(th, oldest)
		st.SlotsExamined += t.NumRows()
	}
	if th != nil {
		th.Compute(200 + 5*float64(processed))
	}
	return st
}
