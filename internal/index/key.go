// Package index implements the B+tree secondary index, including the
// multi-threaded bulk build that backs the paper's index-build contending OU
// (Table 1) and its Fig 1/11 self-driving action.
package index

import (
	"bytes"
	"encoding/binary"
	"math"

	"mb2/internal/catalog"
	"mb2/internal/storage"
)

// Key is a memcmp-comparable encoding of one or more column values, in the
// style of real storage engines: bytes.Compare order on Keys matches the
// column-wise Value order.
type Key []byte

// EncodeKey encodes the given values into a composite key.
func EncodeKey(vals ...storage.Value) Key {
	var out []byte
	for _, v := range vals {
		out = appendValue(out, v)
	}
	return out
}

// AppendKeyFromTuple appends the encoding of the tuple's key columns to
// dst and returns the extended slice. Passing a reusable scratch buffer
// (dst[:0]) makes per-probe key construction allocation-free once the
// buffer has grown to its steady-state size — the hot-path idiom the join
// operators use. Callers must not hand the result to anything that retains
// it (the B+tree retains inserted keys; lookups and deletes do not).
func AppendKeyFromTuple(dst []byte, t storage.Tuple, cols []int) Key {
	for _, c := range cols {
		dst = appendValue(dst, t[c])
	}
	return dst
}

func appendValue(out []byte, v storage.Value) []byte {
	switch v.Kind {
	case catalog.Int64:
		var b [8]byte
		// Flip the sign bit so negative numbers order before positive.
		binary.BigEndian.PutUint64(b[:], uint64(v.I)^(1<<63))
		return append(out, b[:]...)
	case catalog.Float64:
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative floats: flip everything
		} else {
			bits |= 1 << 63 // positive floats: flip sign bit
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(out, b[:]...)
	default:
		// Escape 0x00 as 0x00 0xFF and terminate with 0x00 0x00 so that
		// prefixes order correctly and segments cannot bleed together.
		for i := 0; i < len(v.S); i++ {
			c := v.S[i]
			out = append(out, c)
			if c == 0x00 {
				out = append(out, 0xFF)
			}
		}
		return append(out, 0x00, 0x00)
	}
}

// Compare orders two keys.
func (k Key) Compare(o Key) int { return bytes.Compare(k, o) }

// Equal reports key equality.
func (k Key) Equal(o Key) bool { return bytes.Equal(k, o) }
