package index

import (
	"sort"
	"sync"

	"mb2/internal/catalog"
	"mb2/internal/hw"
	"mb2/internal/storage"
)

// fanout is the maximum number of keys per node.
const fanout = 64

// bulkFill is the leaf fill factor used by bulk builds.
const bulkFill = 48

type node struct {
	leaf     bool
	keys     []Key
	children []*node           // internal nodes
	rows     [][]storage.RowID // leaf postings (duplicates allowed)
	next     *node             // leaf sibling chain
}

// BTree is a latch-protected B+tree mapping composite keys to row IDs.
type BTree struct {
	Meta *catalog.IndexMeta

	mu      sync.RWMutex
	root    *node
	height  int
	numKeys int
	numRows int
	keySize int // representative encoded key width, for the cache model
}

// NewBTree returns an empty index.
func NewBTree(meta *catalog.IndexMeta) *BTree {
	return &BTree{
		Meta:   meta,
		root:   &node{leaf: true},
		height: 1,
	}
}

// NumKeys returns the number of distinct keys.
func (t *BTree) NumKeys() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numKeys
}

// NumRows returns the number of (key,row) entries.
func (t *BTree) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numRows
}

// Height returns the tree height.
func (t *BTree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// SizeBytes returns the modeled resident size of the index.
func (t *BTree) SizeBytes() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sizeBytesLocked()
}

func (t *BTree) sizeBytesLocked() float64 {
	return float64(t.numRows)*(float64(t.keySize)+16) + float64(t.numKeys)*8
}

func (t *BTree) chargeDescent(th *hw.Thread, loops float64) {
	if th == nil {
		return
	}
	th.RandRead(float64(t.height), t.sizeBytesLocked(), loops)
	th.Compute(float64(t.height) * 12) // binary search per node
}

func searchNode(n *node, k Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return n.keys[i].Compare(k) >= 0 })
}

// childIndex returns the child to descend into for key k under the
// convention that keys[i] is the minimum key of children[i].
func childIndex(n *node, k Key) int {
	i := searchNode(n, k)
	if i == len(n.keys) || n.keys[i].Compare(k) > 0 {
		if i > 0 {
			i--
		}
	}
	return i
}

// SearchEQ returns all rows indexed under the key. loops conveys whether the
// lookup is part of a hot loop (index nested-loop joins), which warms the
// cache (the paper's sixth execution-OU feature).
func (t *BTree) SearchEQ(th *hw.Thread, k Key, loops float64) []storage.RowID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.chargeDescent(th, loops)
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n, k)]
	}
	i := searchNode(n, k)
	if i < len(n.keys) && n.keys[i].Equal(k) {
		out := make([]storage.RowID, len(n.rows[i]))
		copy(out, n.rows[i])
		return out
	}
	return nil
}

// SearchEQFunc calls fn for every row indexed under the key, in posting
// order, until fn returns false, and reports the number of rows visited.
// Unlike SearchEQ it does not copy the posting list, so the hot probe path
// of fused pipelines runs allocation-free. fn must not call back into the
// tree (the read latch is held) and must not retain k.
func (t *BTree) SearchEQFunc(th *hw.Thread, k Key, loops float64, fn func(storage.RowID) bool) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.chargeDescent(th, loops)
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n, k)]
	}
	i := searchNode(n, k)
	if i >= len(n.keys) || !n.keys[i].Equal(k) {
		return 0
	}
	visited := 0
	for _, r := range n.rows[i] {
		visited++
		if !fn(r) {
			break
		}
	}
	return visited
}

// SearchRange calls fn for every entry with lo <= key <= hi, in key order,
// until fn returns false. It returns the number of entries visited.
func (t *BTree) SearchRange(th *hw.Thread, lo, hi Key, fn func(Key, storage.RowID) bool) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.chargeDescent(th, 1)
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n, lo)]
	}
	visited := 0
	for n != nil {
		for i := range n.keys {
			if n.keys[i].Compare(lo) < 0 {
				continue
			}
			if hi != nil && n.keys[i].Compare(hi) > 0 {
				t.chargeLeafScan(th, visited)
				return visited
			}
			for _, r := range n.rows[i] {
				visited++
				if !fn(n.keys[i], r) {
					t.chargeLeafScan(th, visited)
					return visited
				}
			}
		}
		n = n.next
	}
	t.chargeLeafScan(th, visited)
	return visited
}

func (t *BTree) chargeLeafScan(th *hw.Thread, entries int) {
	if th == nil || entries == 0 {
		return
	}
	th.SeqRead(float64(entries), float64(t.keySize)+16)
}

// Insert adds a (key,row) entry. contenders is the number of threads
// concurrently mutating the index; it scales the latch charge.
func (t *BTree) Insert(th *hw.Thread, k Key, row storage.RowID, contenders float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if th != nil {
		th.Latch(contenders)
	}
	t.chargeDescent(th, 1)
	if t.keySize == 0 {
		t.keySize = len(k)
	}

	promoted, right := t.insertRec(t.root, k, row, th)
	if promoted != nil {
		newRoot := &node{
			keys:     []Key{t.root.minKey(), promoted},
			children: []*node{t.root, right},
		}
		t.root = newRoot
		t.height++
	}
}

func (n *node) minKey() Key {
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return nil
	}
	return n.keys[0]
}

// insertRec inserts into the subtree and returns a promoted separator key
// and new right sibling when the child split.
func (t *BTree) insertRec(n *node, k Key, row storage.RowID, th *hw.Thread) (Key, *node) {
	if n.leaf {
		i := searchNode(n, k)
		if i < len(n.keys) && n.keys[i].Equal(k) {
			n.rows[i] = append(n.rows[i], row)
			t.numRows++
			if th != nil {
				th.RandWrite(1, t.sizeBytesLocked())
			}
			return nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.rows = append(n.rows, nil)
		copy(n.rows[i+1:], n.rows[i:])
		n.rows[i] = []storage.RowID{row}
		t.numKeys++
		t.numRows++
		if th != nil {
			th.RandWrite(1, t.sizeBytesLocked())
			th.Alloc(float64(len(k)) + 16)
		}
		if len(n.keys) > fanout {
			return t.splitLeaf(n, th)
		}
		return nil, nil
	}

	i := childIndex(n, k)
	promoted, right := t.insertRec(n.children[i], k, row, th)
	if promoted == nil {
		return nil, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+2:], n.keys[i+1:])
	n.keys[i+1] = promoted
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) > fanout {
		return t.splitInternal(n, th)
	}
	return nil, nil
}

func (t *BTree) splitLeaf(n *node, th *hw.Thread) (Key, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]Key(nil), n.keys[mid:]...),
		rows: append([][]storage.RowID(nil), n.rows[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.rows = n.rows[:mid]
	n.next = right
	if th != nil {
		th.Alloc(float64(fanout) * (float64(t.keySize) + 16))
		th.SeqWrite(float64(len(right.keys)), float64(t.keySize)+16)
	}
	return right.keys[0], right
}

func (t *BTree) splitInternal(n *node, th *hw.Thread) (Key, *node) {
	mid := len(n.keys) / 2
	right := &node{
		keys:     append([]Key(nil), n.keys[mid:]...),
		children: append([]*node(nil), n.children[mid:]...),
	}
	sep := n.keys[mid]
	n.keys = n.keys[:mid]
	n.children = n.children[:mid]
	if th != nil {
		th.Alloc(float64(fanout) * (float64(t.keySize) + 16))
	}
	return sep, right
}

// Delete removes one (key,row) entry; when the posting list empties the key
// is removed (leaves are not rebalanced, as in many production trees that
// defer reclamation to compaction). It reports whether an entry was removed.
func (t *BTree) Delete(th *hw.Thread, k Key, row storage.RowID, contenders float64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if th != nil {
		th.Latch(contenders)
	}
	t.chargeDescent(th, 1)
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n, k)]
	}
	i := searchNode(n, k)
	if i >= len(n.keys) || !n.keys[i].Equal(k) {
		return false
	}
	for j, r := range n.rows[i] {
		if r == row {
			n.rows[i] = append(n.rows[i][:j], n.rows[i][j+1:]...)
			t.numRows--
			if len(n.rows[i]) == 0 {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.rows = append(n.rows[:i], n.rows[i+1:]...)
				t.numKeys--
			}
			if th != nil {
				th.RandWrite(1, t.sizeBytesLocked())
			}
			return true
		}
	}
	return false
}
