package index

import (
	"fmt"

	"mb2/internal/storage"
)

// CheckInvariants verifies the B+tree's structural invariants under the
// read latch:
//
//   - every leaf sits at the same depth (matching the recorded height);
//   - node fanout stays within bounds;
//   - keys are strictly increasing within every node and across the whole
//     leaf chain;
//   - an internal node's separator keys bound its children: for i >= 1
//     every key in child i is >= keys[i], and every key in child i is
//     < keys[i+1] (separators may be stale-low after deletions, never
//     stale-high);
//   - the leaf sibling chain enumerates exactly the leaves reachable from
//     the root, in order;
//   - every leaf key has a non-empty posting list, and the numKeys/numRows
//     counters match the tree's contents.
//
// The concurrency harness (internal/check) runs this between stress phases
// and after parallel bulk builds.
func (t *BTree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil {
		return fmt.Errorf("index %q: nil root", t.Meta.Name)
	}
	v := &treeValidator{name: t.Meta.Name}
	if err := v.node(t.root, 1, t.height, nil, nil); err != nil {
		return err
	}
	if len(v.leaves) == 0 {
		return fmt.Errorf("index %q: no leaves reachable from root", t.Meta.Name)
	}
	// The sibling chain starting at the leftmost leaf must visit exactly
	// the reachable leaves, in order.
	chain := v.leaves[0]
	for i, leaf := range v.leaves {
		if chain != leaf {
			return fmt.Errorf("index %q: leaf chain diverges from tree order at leaf %d", t.Meta.Name, i)
		}
		chain = chain.next
	}
	if chain != nil {
		return fmt.Errorf("index %q: leaf chain extends past the last reachable leaf", t.Meta.Name)
	}
	if v.keys != t.numKeys {
		return fmt.Errorf("index %q: counted %d keys, counter says %d", t.Meta.Name, v.keys, t.numKeys)
	}
	if v.rows != t.numRows {
		return fmt.Errorf("index %q: counted %d rows, counter says %d", t.Meta.Name, v.rows, t.numRows)
	}
	return nil
}

type treeValidator struct {
	name   string
	leaves []*node
	keys   int
	rows   int
	// lastKey tracks the previous leaf key seen in tree order, across
	// leaf boundaries.
	lastKey Key
	haveKey bool
}

// node validates the subtree rooted at n. lo and hi bound the keys the
// subtree may contain: lo is inclusive (nil for the leftmost spine, which
// absorbs below-minimum inserts), hi exclusive (nil for unbounded).
func (v *treeValidator) node(n *node, depth, height int, lo, hi Key) error {
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1].Compare(n.keys[i]) >= 0 {
			return fmt.Errorf("index %q: keys out of order at depth %d: %x >= %x",
				v.name, depth, n.keys[i-1], n.keys[i])
		}
	}
	if n.leaf {
		if depth != height {
			return fmt.Errorf("index %q: leaf at depth %d, tree height %d", v.name, depth, height)
		}
		if len(n.keys) > fanout {
			return fmt.Errorf("index %q: leaf holds %d keys, fanout %d", v.name, len(n.keys), fanout)
		}
		if len(n.rows) != len(n.keys) {
			return fmt.Errorf("index %q: leaf has %d posting lists for %d keys", v.name, len(n.rows), len(n.keys))
		}
		for i, k := range n.keys {
			if lo != nil && k.Compare(lo) < 0 {
				return fmt.Errorf("index %q: leaf key %x below separator %x", v.name, k, lo)
			}
			if hi != nil && k.Compare(hi) >= 0 {
				return fmt.Errorf("index %q: leaf key %x at or above next separator %x", v.name, k, hi)
			}
			if v.haveKey && v.lastKey.Compare(k) >= 0 {
				return fmt.Errorf("index %q: leaf chain not strictly increasing at key %x", v.name, k)
			}
			v.lastKey, v.haveKey = k, true
			if len(n.rows[i]) == 0 {
				return fmt.Errorf("index %q: key %x has an empty posting list", v.name, k)
			}
			v.rows += len(n.rows[i])
		}
		v.keys += len(n.keys)
		v.leaves = append(v.leaves, n)
		return nil
	}
	if depth >= height {
		return fmt.Errorf("index %q: internal node at depth %d, tree height %d", v.name, depth, height)
	}
	if len(n.children) != len(n.keys) {
		return fmt.Errorf("index %q: internal node has %d children for %d keys", v.name, len(n.children), len(n.keys))
	}
	if len(n.keys) == 0 {
		return fmt.Errorf("index %q: empty internal node at depth %d", v.name, depth)
	}
	if len(n.keys) > fanout+1 {
		return fmt.Errorf("index %q: internal node holds %d keys, fanout %d", v.name, len(n.keys), fanout)
	}
	for i, child := range n.children {
		// Child 0 inherits the subtree's lower bound: inserts below the
		// global minimum always descend into the leftmost child, so its
		// separator may be stale.
		clo := lo
		if i > 0 {
			clo = n.keys[i]
		}
		chi := hi
		if i+1 < len(n.keys) {
			chi = n.keys[i+1]
		}
		if err := v.node(child, depth+1, height, clo, chi); err != nil {
			return err
		}
	}
	return nil
}

// Entries calls fn for every (key, row) entry in key order until fn returns
// false: the full-index iteration the invariant checkers compare against
// table contents.
func (t *BTree) Entries(fn func(Key, storage.RowID) bool) {
	t.SearchRange(nil, nil, nil, fn)
}
