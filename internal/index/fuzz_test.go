package index

import (
	"math"
	"testing"

	"mb2/internal/storage"
)

// FuzzEncodeKey checks the order-preservation contract of the key encoding:
// for any two tuples of (int, float, string) columns, comparing the encoded
// keys bytewise must agree with comparing the tuples column-wise. NaN is
// skipped (Value.Compare treats NaN as equal-to-everything, which no total
// byte order can honor) and -0.0 is normalized to +0.0 (they are equal as
// floats but have distinct bit patterns).
func FuzzEncodeKey(f *testing.F) {
	f.Add(int64(0), 0.0, "", int64(0), 0.0, "")
	f.Add(int64(-1), 1.5, "a", int64(1), -1.5, "b")
	f.Add(int64(math.MinInt64), math.Inf(-1), "a\x00b", int64(math.MaxInt64), math.Inf(1), "a\x00")
	f.Add(int64(42), -0.0, "cust-000001", int64(42), 0.0, "cust-0000010")
	f.Add(int64(7), 1e-300, "\xff\xff", int64(7), -1e-300, "\xff")
	f.Fuzz(func(t *testing.T, i1 int64, f1 float64, s1 string, i2 int64, f2 float64, s2 string) {
		if math.IsNaN(f1) || math.IsNaN(f2) {
			t.Skip("NaN has no position in a total order")
		}
		if f1 == 0 {
			f1 = 0 // collapse -0.0 and +0.0
		}
		if f2 == 0 {
			f2 = 0
		}
		a := storage.Tuple{storage.NewInt(i1), storage.NewFloat(f1), storage.NewString(s1)}
		b := storage.Tuple{storage.NewInt(i2), storage.NewFloat(f2), storage.NewString(s2)}
		want := 0
		for i := range a {
			if c := a[i].Compare(b[i]); c != 0 {
				want = c
				break
			}
		}
		ka := EncodeKey(a...)
		kb := EncodeKey(b...)
		got := ka.Compare(kb)
		if sign(got) != sign(want) {
			t.Fatalf("EncodeKey order mismatch: tuples compare %d, keys compare %d\na=%v\nb=%v\nka=%x\nkb=%x",
				want, got, a, b, ka, kb)
		}
		if (want == 0) != ka.Equal(kb) {
			t.Fatalf("EncodeKey equality mismatch: tuples compare %d, keys equal=%t", want, ka.Equal(kb))
		}
	})
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}
