package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mb2/internal/catalog"
	"mb2/internal/hw"
	"mb2/internal/storage"
)

func meta() *catalog.IndexMeta {
	return &catalog.IndexMeta{ID: 1, Name: "idx", TableID: 1, KeyCols: []int{0}}
}

func th() *hw.Thread { return hw.NewThread(hw.DefaultCPU()) }

func intKey(v int64) Key { return EncodeKey(storage.NewInt(v)) }

func TestKeyEncodingOrdersLikeValues(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := intKey(a), intKey(b)
		want := storage.NewInt(a).Compare(storage.NewInt(b))
		return ka.Compare(kb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyEncodingFloatOrder(t *testing.T) {
	vals := []float64{-1e9, -3.5, -0.0001, 0, 0.0001, 1.5, 2.5, 1e12}
	for i := 1; i < len(vals); i++ {
		a := EncodeKey(storage.NewFloat(vals[i-1]))
		b := EncodeKey(storage.NewFloat(vals[i]))
		if a.Compare(b) >= 0 {
			t.Fatalf("float key order broken: %v >= %v", vals[i-1], vals[i])
		}
	}
}

func TestKeyEncodingStringsWithZeroBytes(t *testing.T) {
	a := EncodeKey(storage.NewString("a"))
	ab := EncodeKey(storage.NewString("a\x00b"))
	b := EncodeKey(storage.NewString("b"))
	if a.Compare(ab) >= 0 || ab.Compare(b) >= 0 {
		t.Fatal("embedded NUL breaks ordering")
	}
}

func TestKeyEncodingCompositeSegments(t *testing.T) {
	// ("ab", "c") must differ from ("a", "bc").
	k1 := EncodeKey(storage.NewString("ab"), storage.NewString("c"))
	k2 := EncodeKey(storage.NewString("a"), storage.NewString("bc"))
	if k1.Equal(k2) {
		t.Fatal("segments bleed together")
	}
	// Composite order: first column dominates.
	k3 := EncodeKey(storage.NewInt(1), storage.NewInt(99))
	k4 := EncodeKey(storage.NewInt(2), storage.NewInt(0))
	if k3.Compare(k4) >= 0 {
		t.Fatal("composite order broken")
	}
}

func TestInsertSearch(t *testing.T) {
	tr := NewBTree(meta())
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		tr.Insert(th(), intKey(int64(v)), storage.RowID(v), 1)
	}
	if tr.NumKeys() != n || tr.NumRows() != n {
		t.Fatalf("counts: keys=%d rows=%d", tr.NumKeys(), tr.NumRows())
	}
	if tr.Height() < 2 {
		t.Fatalf("tree of %d keys should have split, height=%d", n, tr.Height())
	}
	for _, probe := range []int64{0, 1, 17, 999, n - 1} {
		rows := tr.SearchEQ(th(), intKey(probe), 1)
		if len(rows) != 1 || rows[0] != storage.RowID(probe) {
			t.Fatalf("SearchEQ(%d) = %v", probe, rows)
		}
	}
	if rows := tr.SearchEQ(nil, intKey(n+5), 1); rows != nil {
		t.Fatalf("missing key returned %v", rows)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := NewBTree(meta())
	for i := 0; i < 10; i++ {
		tr.Insert(nil, intKey(7), storage.RowID(i), 1)
	}
	if tr.NumKeys() != 1 || tr.NumRows() != 10 {
		t.Fatalf("dup counts: keys=%d rows=%d", tr.NumKeys(), tr.NumRows())
	}
	rows := tr.SearchEQ(nil, intKey(7), 1)
	if len(rows) != 10 {
		t.Fatalf("SearchEQ dup = %d rows", len(rows))
	}
}

func TestSearchRange(t *testing.T) {
	tr := NewBTree(meta())
	for i := 0; i < 1000; i++ {
		tr.Insert(nil, intKey(int64(i*2)), storage.RowID(i), 1) // even keys
	}
	var got []int64
	n := tr.SearchRange(th(), intKey(100), intKey(120), func(k Key, r storage.RowID) bool {
		got = append(got, int64(r))
		return true
	})
	if n != 11 { // keys 100..120 step 2
		t.Fatalf("range visited %d, want 11", n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("range order broken: %v", got)
		}
	}
	// Open-ended range.
	n = tr.SearchRange(nil, intKey(1990), nil, func(Key, storage.RowID) bool { return true })
	if n != 5 { // keys 1990, 1992, 1994, 1996, 1998
		t.Fatalf("open range visited %d, want 5", n)
	}
	// Early stop.
	n = tr.SearchRange(nil, intKey(0), nil, func(Key, storage.RowID) bool { return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDelete(t *testing.T) {
	tr := NewBTree(meta())
	for i := 0; i < 100; i++ {
		tr.Insert(nil, intKey(int64(i)), storage.RowID(i), 1)
	}
	if !tr.Delete(th(), intKey(50), 50, 1) {
		t.Fatal("delete existing failed")
	}
	if tr.Delete(nil, intKey(50), 50, 1) {
		t.Fatal("double delete succeeded")
	}
	if tr.Delete(nil, intKey(5000), 1, 1) {
		t.Fatal("delete missing key succeeded")
	}
	if rows := tr.SearchEQ(nil, intKey(50), 1); rows != nil {
		t.Fatalf("deleted key still found: %v", rows)
	}
	if tr.NumKeys() != 99 {
		t.Fatalf("NumKeys = %d", tr.NumKeys())
	}
	// Deleting one of several postings keeps the key.
	tr.Insert(nil, intKey(7), 700, 1)
	if !tr.Delete(nil, intKey(7), 700, 1) {
		t.Fatal("posting delete failed")
	}
	if rows := tr.SearchEQ(nil, intKey(7), 1); len(rows) != 1 || rows[0] != 7 {
		t.Fatalf("posting delete removed wrong row: %v", rows)
	}
}

func TestBulkBuildMatchesInserts(t *testing.T) {
	const n = 10000
	rng := rand.New(rand.NewSource(7))
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(rng.Intn(n / 2))), Row: storage.RowID(i)}
	}
	tr, res := BulkBuild(meta(), hw.DefaultCPU(), 4, entries)
	if tr.NumRows() != n {
		t.Fatalf("NumRows = %d, want %d", tr.NumRows(), n)
	}
	if res.ElapsedUS <= 0 || len(res.PerThread) != 4 {
		t.Fatalf("bad build result: %+v", res)
	}

	// Cross-check lookups against a reference map.
	ref := make(map[string][]storage.RowID)
	for _, e := range entries {
		ref[string(e.Key)] = append(ref[string(e.Key)], e.Row)
	}
	for ks, rows := range ref {
		got := tr.SearchEQ(nil, Key(ks), 1)
		if len(got) != len(rows) {
			t.Fatalf("key %x: got %d rows, want %d", ks, len(got), len(rows))
		}
	}

	// Full range scan yields globally sorted keys.
	var prev Key
	count := tr.SearchRange(nil, EncodeKey(storage.NewInt(-1)), nil, func(k Key, _ storage.RowID) bool {
		if prev != nil && prev.Compare(k) > 0 {
			t.Fatal("bulk-built tree not sorted")
		}
		prev = k
		return true
	})
	if count != n {
		t.Fatalf("range scan visited %d, want %d", count, n)
	}
}

func TestBulkBuildThreadTradeoff(t *testing.T) {
	const n = 200000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(i)), Row: storage.RowID(i)}
	}
	_, r1 := BulkBuild(meta(), hw.DefaultCPU(), 1, entries)
	_, r4 := BulkBuild(meta(), hw.DefaultCPU(), 4, entries)
	_, r8 := BulkBuild(meta(), hw.DefaultCPU(), 8, entries)
	if !(r8.ElapsedUS < r4.ElapsedUS && r4.ElapsedUS < r1.ElapsedUS) {
		t.Fatalf("more threads must build faster: 1=%v 4=%v 8=%v",
			r1.ElapsedUS, r4.ElapsedUS, r8.ElapsedUS)
	}
	// But total resource consumption grows with contention.
	if r8.Total.Instructions <= r1.Total.Instructions {
		t.Fatalf("contention overhead missing: 8T=%v 1T=%v",
			r8.Total.Instructions, r1.Total.Instructions)
	}
}

func TestBulkBuildEmptyAndSingle(t *testing.T) {
	tr, res := BulkBuild(meta(), hw.DefaultCPU(), 4, nil)
	if tr.NumRows() != 0 || res.ElapsedUS != 0 {
		t.Fatalf("empty build wrong: %+v", res)
	}
	tr, _ = BulkBuild(meta(), hw.DefaultCPU(), 4, []Entry{{Key: intKey(5), Row: 1}})
	if got := tr.SearchEQ(nil, intKey(5), 1); len(got) != 1 {
		t.Fatalf("single-entry build broken: %v", got)
	}
}

func TestBulkBuildKeepsDuplicatesTogether(t *testing.T) {
	// All entries share one key: only one shard may own it.
	entries := make([]Entry, 1000)
	for i := range entries {
		entries[i] = Entry{Key: intKey(42), Row: storage.RowID(i)}
	}
	tr, _ := BulkBuild(meta(), hw.DefaultCPU(), 8, entries)
	if tr.NumKeys() != 1 || tr.NumRows() != 1000 {
		t.Fatalf("dup build: keys=%d rows=%d", tr.NumKeys(), tr.NumRows())
	}
}

func TestKeyFromTuple(t *testing.T) {
	tup := storage.Tuple{storage.NewInt(1), storage.NewString("x"), storage.NewInt(9)}
	k := KeyFromTuple(tup, []int{2, 0})
	want := EncodeKey(storage.NewInt(9), storage.NewInt(1))
	if !k.Equal(want) {
		t.Fatal("KeyFromTuple mismatch")
	}
}

func TestInsertAfterBulkBuild(t *testing.T) {
	entries := make([]Entry, 5000)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(i * 2)), Row: storage.RowID(i)}
	}
	tr, _ := BulkBuild(meta(), hw.DefaultCPU(), 2, entries)
	tr.Insert(nil, intKey(4001), 9999, 1)
	if rows := tr.SearchEQ(nil, intKey(4001), 1); len(rows) != 1 || rows[0] != 9999 {
		t.Fatalf("insert after bulk build lost: %v", rows)
	}
	// Tree remains sorted.
	var keys []string
	tr.SearchRange(nil, intKey(3990), intKey(4010), func(k Key, _ storage.RowID) bool {
		keys = append(keys, fmt.Sprintf("%x", k))
		return true
	})
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("unsorted after post-build insert: %v", keys)
	}
}

func TestLoopedLookupCheaper(t *testing.T) {
	tr := NewBTree(meta())
	for i := 0; i < 100000; i++ {
		tr.Insert(nil, intKey(int64(i)), storage.RowID(i), 1)
	}
	cold := th()
	tr.SearchEQ(cold, intKey(5), 1)
	warm := th()
	tr.SearchEQ(warm, intKey(5), 100)
	if warm.Counters().CacheMisses >= cold.Counters().CacheMisses {
		t.Fatal("looped lookups must be cache-warmer")
	}
}

// TestRandomOpsAgainstReference drives the tree with random inserts,
// deletes, and lookups, mirroring every operation into a map-based model
// and checking agreement — a property test on the index's core contract.
func TestRandomOpsAgainstReference(t *testing.T) {
	tr := NewBTree(meta())
	ref := make(map[int64][]storage.RowID)
	rng := rand.New(rand.NewSource(99))
	const keySpace = 200

	remove := func(rows []storage.RowID, row storage.RowID) []storage.RowID {
		for i, r := range rows {
			if r == row {
				return append(rows[:i], rows[i+1:]...)
			}
		}
		return rows
	}

	for op := 0; op < 20000; op++ {
		k := int64(rng.Intn(keySpace))
		switch rng.Intn(3) {
		case 0: // insert
			row := storage.RowID(op)
			tr.Insert(nil, intKey(k), row, 1)
			ref[k] = append(ref[k], row)
		case 1: // delete one posting if present
			if rows := ref[k]; len(rows) > 0 {
				victim := rows[rng.Intn(len(rows))]
				if !tr.Delete(nil, intKey(k), victim, 1) {
					t.Fatalf("op %d: delete of existing (%d,%d) failed", op, k, victim)
				}
				ref[k] = remove(rows, victim)
				if len(ref[k]) == 0 {
					delete(ref, k)
				}
			} else if tr.Delete(nil, intKey(k), 0, 1) {
				t.Fatalf("op %d: delete of missing key %d succeeded", op, k)
			}
		default: // lookup
			got := tr.SearchEQ(nil, intKey(k), 1)
			if len(got) != len(ref[k]) {
				t.Fatalf("op %d: key %d has %d rows, want %d", op, k, len(got), len(ref[k]))
			}
		}
	}

	// Final full verification, including global order and counts.
	wantRows := 0
	for _, rows := range ref {
		wantRows += len(rows)
	}
	if tr.NumKeys() != len(ref) || tr.NumRows() != wantRows {
		t.Fatalf("counts: keys=%d/%d rows=%d/%d", tr.NumKeys(), len(ref), tr.NumRows(), wantRows)
	}
	var prev Key
	visited := 0
	tr.SearchRange(nil, intKey(-1), nil, func(k Key, _ storage.RowID) bool {
		if prev != nil && prev.Compare(k) > 0 {
			t.Fatal("tree order violated")
		}
		prev = k
		visited++
		return true
	})
	if visited != wantRows {
		t.Fatalf("range visited %d, want %d", visited, wantRows)
	}
}
