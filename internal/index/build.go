package index

import (
	"math"
	"sort"

	"mb2/internal/catalog"
	"mb2/internal/hw"
	"mb2/internal/storage"
)

// Entry is one (key, row) pair fed to a bulk build.
type Entry struct {
	Key Key
	Row storage.RowID
}

// KeyFromTuple encodes the key columns of a tuple into a fresh key (safe
// to retain, e.g. by B+tree inserts). Hot paths that only look keys up
// should use AppendKeyFromTuple with a reusable scratch buffer instead.
func KeyFromTuple(t storage.Tuple, cols []int) Key {
	return AppendKeyFromTuple(make([]byte, 0, 8*len(cols)), t, cols)
}

// BuildResult describes what a bulk build cost. ElapsedUS is the
// wall-clock build time: the maximum single-thread elapsed time, per the
// paper's footnote 1 ("MB2 uses the max (instead of the sum) predicted
// elapsed time among each single-threaded invocation").
type BuildResult struct {
	PerThread []hw.Metrics
	ElapsedUS float64
	Total     hw.Metrics // summed across threads (resources are additive)
}

// BulkBuild constructs a B+tree over the entries using the given number of
// build threads. Each thread sorts and loads a shard of the key space;
// installing nodes into the shared tree takes latches whose cost grows with
// the thread count — the internal contention the index-build contending OU
// models (Sec 4.2). The returned per-thread metrics let callers derive both
// build time (max) and resource consumption (sum).
func BulkBuild(meta *catalog.IndexMeta, cpu hw.CPU, threads int, entries []Entry) (*BTree, BuildResult) {
	if threads < 1 {
		threads = 1
	}
	t := NewBTree(meta)
	n := len(entries)
	if n == 0 {
		return t, BuildResult{PerThread: make([]hw.Metrics, threads)}
	}
	t.keySize = len(entries[0].Key)

	// Global sort. The comparison work is split evenly across the build
	// threads (parallel sample sort); the merge is part of each shard load.
	sorted := make([]Entry, n)
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Key.Compare(sorted[j].Key) < 0
	})

	shards := splitEntries(sorted, threads)
	workers := make([]*hw.Thread, threads)
	perThread := make([]hw.Metrics, threads)
	keyBytes := float64(t.keySize)

	var allLeaves [][]*node
	for w := 0; w < threads; w++ {
		th := hw.NewThread(cpu)
		workers[w] = th
		start := th.Counters()
		shard := shards[w]
		sn := float64(len(shard))
		if sn > 0 {
			// Shard sort share: n/T * log2(n) comparisons plus the data
			// movement of reading inputs and writing sorted runs.
			th.Compute(sn * math.Log2(float64(n)+1) * 6)
			th.SeqRead(sn, keyBytes+16)
			th.SeqWrite(sn, keyBytes+16)
		}
		leaves := buildLeaves(t, th, shard, float64(threads))
		allLeaves = append(allLeaves, leaves)
		perThread[w] = th.Since(start)
	}

	// Stitch shard leaves together and build the internal levels (done by
	// the coordinating thread; cheap relative to leaf construction).
	coord := workers[0]
	start := coord.Counters()
	var leaves []*node
	for _, ls := range allLeaves {
		leaves = append(leaves, ls...)
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	t.root, t.height = buildInternal(coord, t, leaves)
	var coordExtra hw.Metrics = coord.Since(start)
	perThread[0].Add(coordExtra)

	res := BuildResult{PerThread: perThread}
	for _, m := range perThread {
		if m.ElapsedUS > res.ElapsedUS {
			res.ElapsedUS = m.ElapsedUS
		}
		res.Total.Add(m)
	}
	return t, res
}

// splitEntries partitions sorted entries into contiguous shards without
// splitting a key's duplicates across shards.
func splitEntries(sorted []Entry, threads int) [][]Entry {
	shards := make([][]Entry, threads)
	n := len(sorted)
	per := (n + threads - 1) / threads
	start := 0
	for w := 0; w < threads && start < n; w++ {
		end := start + per
		if end > n {
			end = n
		}
		// Extend to keep duplicate keys together.
		for end < n && sorted[end].Key.Equal(sorted[end-1].Key) {
			end++
		}
		shards[w] = sorted[start:end]
		start = end
	}
	return shards
}

// buildLeaves constructs the leaf level for one sorted shard, charging the
// work and per-node installation latches to th.
func buildLeaves(t *BTree, th *hw.Thread, shard []Entry, contenders float64) []*node {
	var leaves []*node
	var cur *node
	keyBytes := float64(t.keySize)
	for i := 0; i < len(shard); {
		if cur == nil || len(cur.keys) >= bulkFill {
			cur = &node{leaf: true}
			leaves = append(leaves, cur)
			th.Alloc(float64(bulkFill) * (keyBytes + 16))
			th.Latch(contenders) // install node into the shared tree
		}
		k := shard[i].Key
		var rows []storage.RowID
		for i < len(shard) && shard[i].Key.Equal(k) {
			rows = append(rows, shard[i].Row)
			i++
		}
		cur.keys = append(cur.keys, k)
		cur.rows = append(cur.rows, rows)
		t.numKeys++
		t.numRows += len(rows)
		// Each entry pays the concurrent-insert path of a production build:
		// key extraction and comparison work plus a descent through the
		// already-built portion of the tree (which is what makes large
		// builds memory-bound and expensive — the paper's builds run
		// minutes, ~10us/row/thread).
		built := float64(t.numRows) * (keyBytes + 16)
		for range rows {
			th.Compute(2000)
			th.RandRead(4, built, 1)
		}
		th.SeqWrite(float64(len(rows)), keyBytes+16)
	}
	return leaves
}

// buildInternal builds the internal levels bottom-up and returns the root
// and tree height.
func buildInternal(th *hw.Thread, t *BTree, level []*node) (*node, int) {
	if len(level) == 0 {
		return &node{leaf: true}, 1
	}
	height := 1
	for len(level) > 1 {
		var up []*node
		for i := 0; i < len(level); i += fanout {
			end := i + fanout
			if end > len(level) {
				end = len(level)
			}
			parent := &node{}
			for _, child := range level[i:end] {
				parent.keys = append(parent.keys, child.minKey())
				parent.children = append(parent.children, child)
			}
			up = append(up, parent)
			th.Alloc(float64(fanout) * (float64(t.keySize) + 8))
			th.SeqWrite(float64(end-i), float64(t.keySize)+8)
		}
		level = up
		height++
	}
	return level[0], height
}
