// Package txn implements the MVCC transaction manager: timestamp
// allocation, snapshot tracking, commit/abort, and the logical-contention
// accounting that feeds the transaction begin/commit OUs (Table 1).
package txn

import (
	"errors"
	"sync"

	"mb2/internal/hw"
	"mb2/internal/storage"
)

// ErrTxnFinished is returned for operations on a committed/aborted txn.
var ErrTxnFinished = errors.New("txn: transaction already finished")

// State is a transaction's lifecycle state.
type State int

// Transaction states.
const (
	Active State = iota
	Committed
	Aborted
)

type writeRecord struct {
	table *storage.Table
	row   storage.RowID
	redo  storage.Tuple // nil for delete
}

// Txn is one transaction. It is owned by a single worker thread.
type Txn struct {
	ID     uint64
	ReadTS uint64

	mgr    *Manager
	state  State
	writes []writeRecord
}

// Manager hands out timestamps and tracks active transactions.
//
// Commit timestamps are allocated and published in two steps: a committing
// transaction first reserves the next timestamp (allocTS), stamps every
// written version with it, and only then publishes it (commitTS). Snapshots
// read the published timestamp, so a reader can never observe a partially
// stamped commit — the lost-update race the concurrency harness
// (internal/check) originally caught. Publication is ordered: a timestamp
// becomes visible only once every smaller timestamp has been published.
type Manager struct {
	mu        sync.Mutex
	commitTS  uint64 // last *published* commit timestamp
	allocTS   uint64 // last *allocated* commit timestamp (>= commitTS)
	pending   map[uint64]struct{}
	nextTxnID uint64
	active    map[uint64]uint64 // txnID -> readTS

	begun     uint64
	committed uint64
	aborted   uint64
}

// NewManager returns a fresh transaction manager. Timestamp 0 is reserved
// for pre-loaded data, so a snapshot at 0 already sees bulk-loaded rows.
func NewManager() *Manager {
	return &Manager{
		nextTxnID: 1,
		active:    make(map[uint64]uint64),
		pending:   make(map[uint64]struct{}),
	}
}

// Begin starts a transaction, charging the begin OU's bookkeeping to th.
// The contention charge grows with the number of already-active
// transactions, mirroring the timestamp-allocation and active-set latches
// the paper's contending txn OUs capture.
func (m *Manager) Begin(th *hw.Thread) *Txn {
	m.mu.Lock()
	id := m.nextTxnID
	m.nextTxnID++
	readTS := m.commitTS
	m.active[id] = readTS
	concurrent := len(m.active)
	m.begun++
	m.mu.Unlock()
	if th != nil {
		th.Latch(float64(concurrent))
		th.Compute(120)
		th.Alloc(96)
	}
	return &Txn{ID: id, ReadTS: readTS, mgr: m}
}

// RecordWrite registers a write for commit/abort processing and WAL
// serialization. The storage layer has already installed the version.
func (t *Txn) RecordWrite(table *storage.Table, row storage.RowID, redo storage.Tuple) {
	t.writes = append(t.writes, writeRecord{table: table, row: row, redo: redo})
}

// NumWrites returns how many writes the transaction has recorded.
func (t *Txn) NumWrites() int { return len(t.writes) }

// RedoBytes returns the modeled size of the transaction's redo log payload.
func (t *Txn) RedoBytes() int {
	total := 0
	for _, w := range t.writes {
		total += 24 // header: table, row, type
		if w.redo != nil {
			total += w.redo.Bytes()
		}
	}
	return total
}

// Commit assigns a commit timestamp, stamps every written version, and
// retires the transaction. It returns the commit timestamp.
//
// The timestamp is only published (made visible to new snapshots) after
// every written version carries it, and publication preserves timestamp
// order, so snapshot reads never see a half-committed transaction.
func (t *Txn) Commit(th *hw.Thread) (uint64, error) {
	if t.state != Active {
		return 0, ErrTxnFinished
	}
	m := t.mgr
	m.mu.Lock()
	m.allocTS++
	ts := m.allocTS
	concurrent := len(m.active)
	m.mu.Unlock()

	for _, w := range t.writes {
		w.table.CommitWrite(w.row, t.ID, ts)
	}

	m.mu.Lock()
	delete(m.active, t.ID)
	m.pending[ts] = struct{}{}
	for {
		if _, ok := m.pending[m.commitTS+1]; !ok {
			break
		}
		m.commitTS++
		delete(m.pending, m.commitTS)
	}
	m.committed++
	m.mu.Unlock()
	t.state = Committed
	if th != nil {
		th.Latch(float64(concurrent))
		th.Compute(150 + 40*float64(len(t.writes)))
		th.Free(96)
	}
	return ts, nil
}

// Abort rolls back every installed version and retires the transaction.
func (t *Txn) Abort(th *hw.Thread) error {
	if t.state != Active {
		return ErrTxnFinished
	}
	m := t.mgr
	m.mu.Lock()
	delete(m.active, t.ID)
	concurrent := len(m.active) + 1
	m.aborted++
	m.mu.Unlock()

	for i := len(t.writes) - 1; i >= 0; i-- {
		w := t.writes[i]
		w.table.AbortWrite(w.row, t.ID)
	}
	t.state = Aborted
	if th != nil {
		th.Latch(float64(concurrent))
		th.Compute(150 + 60*float64(len(t.writes)))
		th.Free(96)
	}
	return nil
}

// State returns the transaction's lifecycle state.
func (t *Txn) State() State { return t.state }

// OldestActiveTS returns the snapshot below which all versions are stable:
// the read timestamp of the oldest active transaction, or the latest commit
// timestamp when the system is idle. GC prunes up to this point.
func (m *Manager) OldestActiveTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldest := m.commitTS
	for _, ts := range m.active {
		if ts < oldest {
			oldest = ts
		}
	}
	return oldest
}

// AdvanceTo raises the commit timestamp to at least ts (used by recovery so
// replayed versions become visible to new snapshots).
func (m *Manager) AdvanceTo(ts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts > m.commitTS {
		m.commitTS = ts
	}
	if ts > m.allocTS {
		m.allocTS = ts
	}
}

// LastAllocatedTS returns the most recently allocated commit timestamp. At
// quiesce it equals LastCommitTS; a gap means a commit is mid-publication.
// The concurrency harness checks this invariant between phases.
func (m *Manager) LastAllocatedTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocTS
}

// IsActive reports whether the given transaction is still in flight (used
// by storage invariant checks to classify uncommitted versions).
func (m *Manager) IsActive(txnID uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.active[txnID]
	return ok
}

// LastCommitTS returns the most recent commit timestamp.
func (m *Manager) LastCommitTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitTS
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Stats reports lifetime counters (begun, committed, aborted).
func (m *Manager) Stats() (begun, committed, aborted uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.begun, m.committed, m.aborted
}
