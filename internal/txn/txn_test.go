package txn

import (
	"sync"
	"testing"

	"mb2/internal/catalog"
	"mb2/internal/hw"
	"mb2/internal/storage"
)

func testTable() *storage.Table {
	meta := &catalog.TableMeta{ID: 1, Name: "t", Schema: catalog.NewSchema(
		catalog.Column{Name: "k", Type: catalog.Int64},
		catalog.Column{Name: "v", Type: catalog.Int64},
	)}
	return storage.NewTable(meta)
}

func th() *hw.Thread { return hw.NewThread(hw.DefaultCPU()) }

func TestBeginCommitVisibility(t *testing.T) {
	m := NewManager()
	tbl := testTable()

	t1 := m.Begin(th())
	row := tbl.Insert(nil, t1.ID, storage.Tuple{storage.NewInt(1), storage.NewInt(10)})
	t1.RecordWrite(tbl, row, storage.Tuple{storage.NewInt(1), storage.NewInt(10)})

	// A concurrent snapshot must not see the in-flight insert.
	t2 := m.Begin(nil)
	if _, err := tbl.Read(nil, row, t2.ID, t2.ReadTS); err == nil {
		t.Fatal("in-flight insert visible to concurrent txn")
	}

	ts, err := t1.Commit(th())
	if err != nil || ts == 0 {
		t.Fatalf("commit failed: %v %v", ts, err)
	}
	// t2's snapshot predates the commit.
	if _, err := tbl.Read(nil, row, t2.ID, t2.ReadTS); err == nil {
		t.Fatal("commit leaked into older snapshot")
	}
	// A new transaction sees it.
	t3 := m.Begin(nil)
	if got, err := tbl.Read(nil, row, t3.ID, t3.ReadTS); err != nil || got[1].I != 10 {
		t.Fatalf("new txn cannot read committed row: %v %v", got, err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	m := NewManager()
	tbl := testTable()

	setup := m.Begin(nil)
	row := tbl.Insert(nil, setup.ID, storage.Tuple{storage.NewInt(1), storage.NewInt(10)})
	setup.RecordWrite(tbl, row, nil)
	if _, err := setup.Commit(nil); err != nil {
		t.Fatal(err)
	}

	tx := m.Begin(nil)
	upd := storage.Tuple{storage.NewInt(1), storage.NewInt(99)}
	if err := tbl.Update(nil, row, tx.ID, tx.ReadTS, upd); err != nil {
		t.Fatal(err)
	}
	tx.RecordWrite(tbl, row, upd)
	if err := tx.Abort(th()); err != nil {
		t.Fatal(err)
	}

	reader := m.Begin(nil)
	got, err := tbl.Read(nil, row, reader.ID, reader.ReadTS)
	if err != nil || got[1].I != 10 {
		t.Fatalf("abort did not roll back: %v %v", got, err)
	}
}

func TestDoubleFinishErrors(t *testing.T) {
	m := NewManager()
	tx := m.Begin(nil)
	if _, err := tx.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(nil); err != ErrTxnFinished {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(nil); err != ErrTxnFinished {
		t.Fatalf("abort after commit: %v", err)
	}
	if tx.State() != Committed {
		t.Fatal("state must stay committed")
	}
}

func TestOldestActiveTS(t *testing.T) {
	m := NewManager()
	a := m.Begin(nil)
	if _, err := a.Commit(nil); err != nil {
		t.Fatal(err)
	}
	b := m.Begin(nil) // snapshot at ts 1
	c := m.Begin(nil)
	if _, err := c.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if got := m.OldestActiveTS(); got != b.ReadTS {
		t.Fatalf("OldestActiveTS = %d, want %d", got, b.ReadTS)
	}
	if _, err := b.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if got := m.OldestActiveTS(); got != m.LastCommitTS() {
		t.Fatalf("idle OldestActiveTS = %d, want commitTS %d", got, m.LastCommitTS())
	}
}

func TestRedoBytes(t *testing.T) {
	m := NewManager()
	tbl := testTable()
	tx := m.Begin(nil)
	data := storage.Tuple{storage.NewInt(1), storage.NewInt(2)}
	tx.RecordWrite(tbl, 0, data)
	tx.RecordWrite(tbl, 1, nil) // delete: header only
	if got := tx.RedoBytes(); got != 24+16+24 {
		t.Fatalf("RedoBytes = %d, want 64", got)
	}
	if tx.NumWrites() != 2 {
		t.Fatal("NumWrites wrong")
	}
}

func TestStatsAndActiveCount(t *testing.T) {
	m := NewManager()
	a := m.Begin(nil)
	b := m.Begin(nil)
	if m.ActiveCount() != 2 {
		t.Fatalf("ActiveCount = %d", m.ActiveCount())
	}
	if _, err := a.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Abort(nil); err != nil {
		t.Fatal(err)
	}
	begun, committed, aborted := m.Stats()
	if begun != 2 || committed != 1 || aborted != 1 {
		t.Fatalf("stats = %d %d %d", begun, committed, aborted)
	}
}

func TestConcurrentTimestampsUnique(t *testing.T) {
	m := NewManager()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	ids := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := m.Begin(nil)
				ids[w] = append(ids[w], tx.ID)
				if _, err := tx.Commit(nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, list := range ids {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("duplicate txn id %d", id)
			}
			seen[id] = true
		}
	}
	if m.ActiveCount() != 0 {
		t.Fatal("all txns finished but active set non-empty")
	}
}
