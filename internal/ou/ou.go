// Package ou defines the operating units (OUs) that MB2 decomposes the DBMS
// into: the 19 OUs of the paper's Table 1, their types, input-feature
// schemas, and output-label normalization rules (Sec 4).
//
// Both the execution engine (which records actual OU invocations during
// training) and the modeling framework (which translates plans into OU
// feature vectors at inference time) build features through this package,
// mirroring the paper's single OU-translator infrastructure used for both
// paths (Sec 6.1).
package ou

import "math"

// Kind identifies one operating unit.
type Kind int

// The 19 operating units of NoisePage (Table 1), followed by the
// partitioned-execution OUs this reproduction adds for intra-query
// parallelism (parallel scans, partition-wise join probes, and the exchange
// operator that merges per-partition streams) and the vectorized-execution
// OUs of the batch-at-a-time mode (columnar scans, selection-vector
// filter/project stages, and batched hash-join probes).
const (
	SeqScan Kind = iota
	IdxScan
	HashJoinBuild
	HashJoinProbe
	AggBuild
	AggProbe
	SortBuild
	SortIter
	Insert
	Update
	Delete
	Arithmetic
	Output
	GC
	IndexBuild
	LogSerialize
	LogFlush
	TxnBegin
	TxnCommit
	ParallelScan
	PartitionProbe
	ExchangeMerge
	VecScan
	VecFilter
	VecProbe
	Replay
	IndexRebuild
	CheckpointWrite

	// PaperKinds counts the OUs of the paper's Table 1; kinds at or beyond
	// this index are extensions (partitioned execution, vectorized
	// execution, recovery).
	PaperKinds = int(TxnCommit) + 1

	NumKinds = int(CheckpointWrite) + 1
)

// Type categorizes an OU's behavior pattern (Sec 4.2), which determines what
// its input features represent.
type Type int

// OU behavior types.
const (
	// Singular OUs describe the work of one invocation.
	Singular Type = iota
	// Batch OUs describe a batch of work across invocations in a forecast
	// interval (GC, WAL).
	Batch
	// Contending OUs include internal-contention information (parallel
	// index builds, transaction begin/commit).
	Contending
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Batch:
		return "Batch"
	case Contending:
		return "Contending"
	default:
		return "Singular"
	}
}

// Spec describes one OU: its feature schema and normalization rule.
type Spec struct {
	Kind         Kind
	Name         string
	Type         Type
	FeatureNames []string
	KnobCount    int

	// NormFeature is the index of the tuple-count feature n that output
	// labels are normalized by (Sec 4.3); -1 disables normalization.
	NormFeature int
	// NormLogN selects O(n log n) normalization (sorting) over O(n).
	NormLogN bool
	// MemNormFeature overrides the feature used to normalize the memory
	// label (aggregation hash tables normalize by cardinality); -1 means
	// use NormFeature.
	MemNormFeature int
}

// execFeatures is the common feature schema of the execution-engine
// singular OUs: the paper's seven features (Sec 4.2).
var execFeatures = []string{
	"num_rows", "num_cols", "tuple_bytes", "cardinality",
	"payload_bytes", "num_loops", "exec_mode",
}

var specs = [NumKinds]Spec{
	SeqScan:       {SeqScan, "SEQ_SCAN", Singular, execFeatures, 1, 0, false, -1},
	IdxScan:       {IdxScan, "IDX_SCAN", Singular, execFeatures, 1, 0, false, -1},
	HashJoinBuild: {HashJoinBuild, "HASHJOIN_BUILD", Singular, execFeatures, 1, 0, false, -1},
	HashJoinProbe: {HashJoinProbe, "HASHJOIN_PROBE", Singular, execFeatures, 1, 0, false, -1},
	AggBuild:      {AggBuild, "AGG_BUILD", Singular, execFeatures, 1, 0, false, 3},
	AggProbe:      {AggProbe, "AGG_PROBE", Singular, execFeatures, 1, 0, false, -1},
	SortBuild:     {SortBuild, "SORT_BUILD", Singular, execFeatures, 1, 0, true, -1},
	SortIter:      {SortIter, "SORT_ITER", Singular, execFeatures, 1, 0, false, -1},
	Insert:        {Insert, "INSERT", Singular, execFeatures, 1, 0, false, -1},
	Update:        {Update, "UPDATE", Singular, execFeatures, 1, 0, false, -1},
	Delete:        {Delete, "DELETE", Singular, execFeatures, 1, 0, false, -1},
	Arithmetic: {Arithmetic, "ARITHMETICS", Singular,
		[]string{"num_ops", "exec_mode"}, 1, 0, false, -1},
	Output: {Output, "OUTPUT", Singular, execFeatures, 1, 0, false, -1},
	GC: {GC, "GC", Batch,
		[]string{"num_txns", "num_versions", "interval_us"}, 1, 1, false, -1},
	IndexBuild: {IndexBuild, "INDEX_BUILD", Contending,
		[]string{"num_rows", "num_key_cols", "key_bytes", "cardinality", "num_threads"}, 1, 0, true, -1},
	LogSerialize: {LogSerialize, "LOG_SERIALIZE", Batch,
		[]string{"num_records", "num_bytes", "num_buffers", "interval_us"}, 1, 1, false, -1},
	LogFlush: {LogFlush, "LOG_FLUSH", Batch,
		[]string{"num_bytes", "num_buffers", "interval_us"}, 1, 0, false, -1},
	TxnBegin: {TxnBegin, "TXN_BEGIN", Contending,
		[]string{"txn_rate", "active_txns"}, 0, -1, false, -1},
	TxnCommit: {TxnCommit, "TXN_COMMIT", Contending,
		[]string{"txn_rate", "active_txns"}, 0, -1, false, -1},
	// Partitioned-execution OUs. The dop and num_partitions features are
	// knobs (the self-driving actions "set DOP" and "repartition" move them),
	// mirroring how exec_mode rides along on the execution OUs.
	ParallelScan: {ParallelScan, "PARALLEL_SCAN", Singular,
		[]string{"num_rows", "num_cols", "tuple_bytes", "num_partitions", "dop", "exec_mode"}, 3, 0, false, -1},
	PartitionProbe: {PartitionProbe, "PARTITION_PROBE", Singular,
		[]string{"num_rows", "num_cols", "tuple_bytes", "cardinality", "payload_bytes", "dop", "exec_mode"}, 2, 0, false, -1},
	ExchangeMerge: {ExchangeMerge, "EXCHANGE_MERGE", Singular,
		[]string{"num_rows", "tuple_bytes", "num_partitions", "dop", "exec_mode"}, 3, 0, false, -1},
	// Vectorized-execution OUs. They carry no exec_mode feature — the kind
	// itself implies vectorized mode, so existing models' feature spaces are
	// untouched — and record the batch size as a knob-style trailing feature
	// (the tunable that moves the fixed per-batch overhead).
	VecScan: {VecScan, "VEC_SCAN", Singular,
		[]string{"num_rows", "num_cols", "tuple_bytes", "batch_rows"}, 1, 0, false, -1},
	VecFilter: {VecFilter, "VEC_FILTER", Singular,
		[]string{"num_rows", "num_ops", "batch_rows"}, 1, 0, false, -1},
	VecProbe: {VecProbe, "VEC_PROBE", Singular,
		[]string{"num_rows", "num_cols", "tuple_bytes", "cardinality", "payload_bytes", "batch_rows"}, 1, 0, false, -1},
	// Recovery OUs: the cost of coming back — replaying a committed log
	// suffix, rebuilding secondary indexes over the recovered heap, and
	// writing a checkpoint image. The planner prices failover targets and
	// checkpoint scheduling with exactly these three, and every feature is
	// known at decision time (a replica's pending byte/record/commit lag,
	// its row counts, its schema widths) — no cardinality estimation
	// involved.
	Replay: {Replay, "REPLAY", Batch,
		[]string{"num_records", "num_commits", "num_bytes"}, 0, 0, false, -1},
	IndexRebuild: {IndexRebuild, "INDEX_REBUILD", Singular,
		[]string{"num_rows", "num_indexes", "key_bytes"}, 0, 0, false, -1},
	CheckpointWrite: {CheckpointWrite, "CHECKPOINT", Batch,
		[]string{"num_rows", "tuple_bytes"}, 0, 0, false, -1},
}

// Get returns the spec for a kind.
func Get(k Kind) Spec { return specs[k] }

// All returns every OU spec in declaration order.
func All() []Spec {
	out := make([]Spec, NumKinds)
	copy(out, specs[:])
	return out
}

// String implements fmt.Stringer.
func (k Kind) String() string { return specs[k].Name }

// ByName resolves an OU name (as printed in Fig 5) back to its kind.
func ByName(name string) (Kind, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s.Kind, true
		}
	}
	return 0, false
}

// NumFeatures returns the length of the OU's feature vector.
func (s Spec) NumFeatures() int { return len(s.FeatureNames) }

// NormDivisor returns the value output labels are divided by for the given
// feature vector under the OU's normalization rule, and the (possibly
// different) divisor for the memory label. Both are >= 1.
func (s Spec) NormDivisor(features []float64) (labels, memory float64) {
	if s.NormFeature < 0 || s.NormFeature >= len(features) {
		return 1, 1
	}
	n := features[s.NormFeature]
	if n < 1 {
		n = 1
	}
	labels = n
	if s.NormLogN {
		labels = n * math.Log2(n+1)
	}
	memory = labels
	if s.MemNormFeature >= 0 && s.MemNormFeature < len(features) {
		memory = features[s.MemNormFeature]
		if memory < 1 {
			memory = 1
		}
	} else if s.NormLogN {
		// Memory is linear even when time is O(n log n).
		memory = n
	}
	return labels, memory
}

// ExecFeatures builds the common seven-feature vector of the execution OUs.
func ExecFeatures(rows, cols, tupleBytes, cardinality, payloadBytes, loops float64, compiled bool) []float64 {
	mode := 0.0
	if compiled {
		mode = 1
	}
	if loops < 1 {
		loops = 1
	}
	return []float64{rows, cols, tupleBytes, cardinality, payloadBytes, loops, mode}
}

// ArithmeticFeatures builds the filter/arithmetic OU's two features.
func ArithmeticFeatures(ops float64, compiled bool) []float64 {
	mode := 0.0
	if compiled {
		mode = 1
	}
	return []float64{ops, mode}
}

// GCFeatures builds the garbage-collection batch OU features.
func GCFeatures(txns, versions, intervalUS float64) []float64 {
	return []float64{txns, versions, intervalUS}
}

// IndexBuildFeatures builds the index-build contending OU features.
func IndexBuildFeatures(rows, keyCols, keyBytes, cardinality, threads float64) []float64 {
	return []float64{rows, keyCols, keyBytes, cardinality, threads}
}

// LogSerializeFeatures builds the WAL serialization batch OU features.
func LogSerializeFeatures(records, bytes, buffers, intervalUS float64) []float64 {
	return []float64{records, bytes, buffers, intervalUS}
}

// LogFlushFeatures builds the WAL flush batch OU features.
func LogFlushFeatures(bytes, buffers, intervalUS float64) []float64 {
	return []float64{bytes, buffers, intervalUS}
}

// TxnFeatures builds the transaction begin/commit contending OU features.
func TxnFeatures(txnRate, activeTxns float64) []float64 {
	return []float64{txnRate, activeTxns}
}

// ParallelScanFeatures builds the per-partition parallel scan OU features.
func ParallelScanFeatures(rows, cols, tupleBytes, partitions, dop float64, compiled bool) []float64 {
	mode := 0.0
	if compiled {
		mode = 1
	}
	if partitions < 1 {
		partitions = 1
	}
	if dop < 1 {
		dop = 1
	}
	return []float64{rows, cols, tupleBytes, partitions, dop, mode}
}

// PartitionProbeFeatures builds the partition-wise hash-join OU features
// (one invocation per partition pair: build plus probe of that partition).
func PartitionProbeFeatures(rows, cols, tupleBytes, cardinality, payloadBytes, dop float64, compiled bool) []float64 {
	mode := 0.0
	if compiled {
		mode = 1
	}
	if dop < 1 {
		dop = 1
	}
	return []float64{rows, cols, tupleBytes, cardinality, payloadBytes, dop, mode}
}

// VecScanFeatures builds the vectorized columnar-scan OU features. The
// batch size rides along as the trailing knob-style feature.
func VecScanFeatures(rows, cols, tupleBytes, batchRows float64) []float64 {
	if batchRows < 1 {
		batchRows = 1
	}
	return []float64{rows, cols, tupleBytes, batchRows}
}

// VecFilterFeatures builds the vectorized filter/project stage OU features:
// rows entering the stage and the total expression operations evaluated
// over the selection vector.
func VecFilterFeatures(rows, ops, batchRows float64) []float64 {
	if batchRows < 1 {
		batchRows = 1
	}
	return []float64{rows, ops, batchRows}
}

// VecProbeFeatures builds the batched hash-join probe OU features,
// mirroring HASHJOIN_PROBE's shape (probe input plus emitted matches,
// build cardinality, output payload width) with the batch size appended.
func VecProbeFeatures(rows, cols, tupleBytes, cardinality, payloadBytes, batchRows float64) []float64 {
	if batchRows < 1 {
		batchRows = 1
	}
	return []float64{rows, cols, tupleBytes, cardinality, payloadBytes, batchRows}
}

// ExchangeMergeFeatures builds the exchange-merge OU features (the
// partition-order concatenation of per-partition result streams).
func ExchangeMergeFeatures(rows, tupleBytes, partitions, dop float64, compiled bool) []float64 {
	mode := 0.0
	if compiled {
		mode = 1
	}
	if partitions < 1 {
		partitions = 1
	}
	if dop < 1 {
		dop = 1
	}
	return []float64{rows, tupleBytes, partitions, dop, mode}
}

// ReplayFeatures builds the log-replay OU features: the committed suffix a
// recovering node (or promoted replica) must redo, measured in records,
// commits, and valid log bytes — all exact at decision time.
func ReplayFeatures(records, commits, bytes float64) []float64 {
	return []float64{records, commits, bytes}
}

// IndexRebuildFeatures builds the recovery index-rebuild OU features: the
// heap rows scanned, the indexes rebuilt over them, and the total key bytes
// inserted.
func IndexRebuildFeatures(rows, indexes, keyBytes float64) []float64 {
	return []float64{rows, indexes, keyBytes}
}

// CheckpointFeatures builds the checkpoint-write OU features: the rows
// snapshotted and their modeled tuple width.
func CheckpointFeatures(rows, tupleBytes float64) []float64 {
	return []float64{rows, tupleBytes}
}
