package ou

import (
	"math"
	"testing"
)

func TestTableOneFidelity(t *testing.T) {
	if PaperKinds != 19 {
		t.Fatalf("paper defines 19 OUs, have %d", PaperKinds)
	}
	if NumKinds != PaperKinds+9 {
		t.Fatalf("expected the 19 paper OUs plus 3 partition OUs plus 3 vectorized OUs plus 3 recovery OUs, have %d", NumKinds)
	}
	// Feature counts from Table 1.
	wantFeatures := map[Kind]int{
		SeqScan: 7, IdxScan: 7, HashJoinBuild: 7, HashJoinProbe: 7,
		AggBuild: 7, AggProbe: 7, SortBuild: 7, SortIter: 7,
		Insert: 7, Update: 7, Delete: 7, Output: 7,
		Arithmetic: 2, GC: 3, IndexBuild: 5,
		LogSerialize: 4, LogFlush: 3, TxnBegin: 2, TxnCommit: 2,
	}
	for k, want := range wantFeatures {
		if got := Get(k).NumFeatures(); got != want {
			t.Errorf("%v: %d features, want %d", k, got, want)
		}
	}
	// Types from Table 1.
	wantType := map[Kind]Type{
		SeqScan: Singular, Output: Singular, Arithmetic: Singular,
		GC: Batch, LogSerialize: Batch, LogFlush: Batch,
		IndexBuild: Contending, TxnBegin: Contending, TxnCommit: Contending,
	}
	for k, want := range wantType {
		if got := Get(k).Type; got != want {
			t.Errorf("%v: type %v, want %v", k, got, want)
		}
	}
	// Knob counts: txn OUs have none, the partition OUs carry the dop (and,
	// for scans and merges, partition-count) knobs on top of exec_mode,
	// everything else has one.
	for _, s := range All() {
		want := 1
		switch s.Kind {
		case TxnBegin, TxnCommit, Replay, IndexRebuild, CheckpointWrite:
			want = 0
		case ParallelScan, ExchangeMerge:
			want = 3
		case PartitionProbe:
			want = 2
		}
		if s.KnobCount != want {
			t.Errorf("%v: %d knobs, want %d", s.Kind, s.KnobCount, want)
		}
	}
}

func TestSpecNamesRoundTrip(t *testing.T) {
	for _, s := range All() {
		k, ok := ByName(s.Name)
		if !ok || k != s.Kind {
			t.Errorf("ByName(%q) = %v, %v", s.Name, k, ok)
		}
	}
	if _, ok := ByName("NOPE"); ok {
		t.Fatal("unknown name must fail")
	}
}

func TestNormDivisorLinear(t *testing.T) {
	s := Get(SeqScan)
	feats := ExecFeatures(1000, 4, 32, 100, 0, 1, false)
	labels, memory := s.NormDivisor(feats)
	if labels != 1000 || memory != 1000 {
		t.Fatalf("linear norm = %v/%v, want 1000/1000", labels, memory)
	}
}

func TestNormDivisorNLogN(t *testing.T) {
	s := Get(SortBuild)
	feats := ExecFeatures(1024, 4, 32, 100, 0, 1, false)
	labels, memory := s.NormDivisor(feats)
	want := 1024 * math.Log2(1025)
	if math.Abs(labels-want) > 1e-9 {
		t.Fatalf("nlogn norm = %v, want %v", labels, want)
	}
	if memory != 1024 {
		t.Fatalf("sort memory must normalize linearly, got %v", memory)
	}
}

func TestNormDivisorAggMemoryByCardinality(t *testing.T) {
	s := Get(AggBuild)
	feats := ExecFeatures(100000, 4, 32, 500, 0, 1, false)
	labels, memory := s.NormDivisor(feats)
	if labels != 100000 {
		t.Fatalf("agg labels norm = %v", labels)
	}
	if memory != 500 {
		t.Fatalf("agg memory must normalize by cardinality, got %v", memory)
	}
}

func TestNormDivisorDisabled(t *testing.T) {
	s := Get(TxnBegin)
	labels, memory := s.NormDivisor(TxnFeatures(100, 5))
	if labels != 1 || memory != 1 {
		t.Fatalf("txn OUs must not normalize: %v/%v", labels, memory)
	}
}

func TestNormDivisorFloorsAtOne(t *testing.T) {
	s := Get(SeqScan)
	labels, memory := s.NormDivisor(ExecFeatures(0, 1, 8, 0, 0, 1, false))
	if labels < 1 || memory < 1 {
		t.Fatalf("divisors must floor at 1: %v/%v", labels, memory)
	}
}

func TestFeatureBuilders(t *testing.T) {
	f := ExecFeatures(10, 2, 16, 5, 8, 0, true)
	if len(f) != 7 || f[6] != 1 || f[5] != 1 {
		t.Fatalf("ExecFeatures = %v", f)
	}
	if f2 := ArithmeticFeatures(100, false); len(f2) != 2 || f2[1] != 0 {
		t.Fatalf("ArithmeticFeatures = %v", f2)
	}
	if f3 := GCFeatures(1, 2, 3); len(f3) != 3 {
		t.Fatalf("GCFeatures = %v", f3)
	}
	if f4 := IndexBuildFeatures(1, 2, 3, 4, 5); len(f4) != 5 {
		t.Fatalf("IndexBuildFeatures = %v", f4)
	}
	if f5 := LogSerializeFeatures(1, 2, 3, 4); len(f5) != 4 {
		t.Fatalf("LogSerializeFeatures = %v", f5)
	}
	if f6 := LogFlushFeatures(1, 2, 3); len(f6) != 3 {
		t.Fatalf("LogFlushFeatures = %v", f6)
	}
	if f7 := TxnFeatures(1, 2); len(f7) != 2 {
		t.Fatalf("TxnFeatures = %v", f7)
	}
	if f8 := ParallelScanFeatures(10, 2, 16, 4, 2, true); len(f8) != 6 || f8[5] != 1 {
		t.Fatalf("ParallelScanFeatures = %v", f8)
	}
	if f9 := PartitionProbeFeatures(10, 2, 16, 5, 32, 2, false); len(f9) != 7 || f9[6] != 0 {
		t.Fatalf("PartitionProbeFeatures = %v", f9)
	}
	if f10 := ExchangeMergeFeatures(10, 16, 0, 0, true); len(f10) != 5 || f10[2] != 1 || f10[3] != 1 {
		t.Fatalf("ExchangeMergeFeatures = %v", f10)
	}
	if f11 := VecScanFeatures(10, 2, 16, 0); len(f11) != 4 || f11[3] != 1 {
		t.Fatalf("VecScanFeatures = %v", f11)
	}
	if f12 := VecFilterFeatures(10, 30, 1024); len(f12) != 3 || f12[2] != 1024 {
		t.Fatalf("VecFilterFeatures = %v", f12)
	}
	if f13 := VecProbeFeatures(10, 2, 16, 5, 32, 1024); len(f13) != 6 || f13[5] != 1024 {
		t.Fatalf("VecProbeFeatures = %v", f13)
	}
}

func TestFeatureLimitLowDimensional(t *testing.T) {
	// The paper's low-dimensionality principle: at most ten features per OU.
	for _, s := range All() {
		if s.NumFeatures() > 10 {
			t.Errorf("%v has %d features, violating the <=10 principle", s.Kind, s.NumFeatures())
		}
		if s.NumFeatures() == 0 {
			t.Errorf("%v has no features", s.Kind)
		}
	}
}
