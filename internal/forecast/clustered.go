package forecast

import (
	"math"
	"sort"
)

// Recency weighting for fan-out shares. Rather than decaying old
// observations (O(population) per interval), new observations are scaled
// up by a growing factor: a count c recorded at interval i contributes
// c * weightGrowth^i, so relative shares are recency-weighted for free and
// both per-template and per-cluster totals fold in with O(1) work. The
// scale is renormalized (one O(population) pass) only when it approaches
// float64 range — every few thousand intervals.
const (
	weightGrowth   = 1.25
	weightRenormAt = 1e150
)

// NewClusteredHistory creates a windowed history that maintains
// per-CLUSTER series instead of per-template series: Append folds each
// observed template's count into its cluster's bucket in O(1), so the
// store's per-interval cost is O(active templates + K) instead of
// O(template population) — the workload-compression contract. Per-template
// state is limited to a recency-weighted fan-out weight (one float64 per
// template ever observed). maxIntervals <= 0 means unbounded.
//
// Templates are normally registered with the clusterer (plan fingerprint +
// feature vector) before their counts first arrive; names that show up
// unregistered are absorbed via Clusterer.AssignOrphan in sorted-name
// order, keeping assignment deterministic regardless of map iteration.
func NewClusteredHistory(intervalUS float64, maxIntervals int, c *Clusterer) *History {
	h := NewWindowedHistory(intervalUS, maxIntervals)
	h.clusterer = c
	h.weights = make(map[string]float64)
	h.wScale = 1
	return h
}

// Clustered reports whether the history maintains cluster series.
func (h *History) Clustered() bool { return h.clusterer != nil }

// Clusterer returns the attached clusterer (nil for a plain history).
func (h *History) Clusterer() *Clusterer { return h.clusterer }

// appendClustered is Append's clustered path; the caller holds h.mu and
// has already advanced h.intervals.
func (h *History) appendClustered(counts map[string]float64) {
	h.wScale *= weightGrowth
	if h.wScale > weightRenormAt {
		inv := 1 / weightRenormAt
		h.wScale *= inv
		for name := range h.weights {
			h.weights[name] *= inv
		}
		for i := range h.clusterWeight {
			h.clusterWeight[i] *= inv
		}
	}

	// Sorted iteration so orphan assignment (which can found clusters) is
	// independent of map iteration order.
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)

	perCluster := make(map[int]float64, len(names))
	for _, name := range names {
		id, ok := h.clusterer.Lookup(name)
		if !ok {
			id = h.clusterer.AssignOrphan(name)
		}
		v := counts[name]
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			continue
		}
		perCluster[id] += v
		h.weights[name] += v * h.wScale
	}

	// Clusters founded since the last interval start with zero-padded
	// series, so every cluster series spans every retained interval.
	for n := h.clusterer.Len(); len(h.clusterCounts) < n; {
		h.clusterCounts = append(h.clusterCounts, make([]float64, h.intervals-1))
		h.clusterWeight = append(h.clusterWeight, 0)
	}
	for id := range h.clusterCounts {
		v := perCluster[id]
		h.clusterCounts[id] = append(h.clusterCounts[id], v)
		h.clusterWeight[id] += v * h.wScale
	}

	if h.window > 0 && h.intervals > h.window {
		drop := h.intervals - h.window
		for id, series := range h.clusterCounts {
			h.clusterCounts[id] = append([]float64(nil), series[drop:]...)
		}
		h.intervals = h.window
		h.evicted += drop
	}
}

// NumClusters returns how many clusters have at least one retained series.
func (h *History) NumClusters() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.clusterCounts)
}

// ClusterSeries returns a copy of one cluster's per-interval volume series
// (nil for an unknown ID).
func (h *History) ClusterSeries(id int) []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if id < 0 || id >= len(h.clusterCounts) {
		return nil
	}
	return append([]float64(nil), h.clusterCounts[id]...)
}

// Share returns a template's recency-weighted share of its cluster's
// volume — the fan-out factor that turns a cluster-level prediction back
// into a per-template prediction. Unknown templates and empty clusters
// share 0.
func (h *History) Share(name string) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.shareLocked(name)
}

func (h *History) shareLocked(name string) float64 {
	if h.clusterer == nil {
		return 0
	}
	id, ok := h.clusterer.Lookup(name)
	if !ok || id >= len(h.clusterWeight) {
		return 0
	}
	w, cw := h.weights[name], h.clusterWeight[id]
	if cw <= 0 || w <= 0 {
		return 0
	}
	return w / cw
}

// FanOut distributes per-cluster predictions back to the given member
// templates proportionally to their recency-weighted shares:
// pred(template) = clusterPred[cluster(template)] * Share(template).
// Only the requested names are touched, so MAPE accounting against an
// interval's observed templates costs O(observed), not O(population).
func (h *History) FanOut(clusterPred []float64, names []string) map[string]float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]float64, len(names))
	for _, name := range names {
		p := 0.0
		if id, ok := h.clusterer.Lookup(name); ok && id < len(clusterPred) {
			p = clusterPred[id] * h.shareLocked(name)
			if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
				p = 0
			}
		}
		out[name] = p
	}
	return out
}

// ForecastClusters predicts every cluster's volume for the next horizon
// intervals, indexed by cluster ID. The per-cluster cost matches
// Forecast's per-template cost, so a full forecasting pass is O(K), not
// O(template population).
func (f Forecaster) ForecastClusters(h *History, horizon int) [][]float64 {
	n := h.NumClusters()
	out := make([][]float64, n)
	for id := 0; id < n; id++ {
		out[id] = f.forecastSeries(h.ClusterSeries(id), horizon)
	}
	return out
}
