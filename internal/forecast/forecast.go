// Package forecast implements the workload-forecasting substrate MB2
// assumes as input (Sec 3, citing the QB5000 line of work): it tracks the
// arrival volume of each query template per fixed interval and predicts
// future interval volumes with an ensemble of a linear trend and a
// seasonal-naive component. A self-driving DBMS feeds these predictions to
// MB2's inference pipeline as the workload forecast.
package forecast

import (
	"math"
	"sort"
	"sync"
)

// History accumulates per-template arrival counts in fixed intervals.
//
// A History is safe for concurrent use: the online control loop's
// aggregator Appends one interval at a time while planning goroutines read
// Series/Templates/Len. Series returns a copy, so a snapshot taken before
// an Append is never mutated by it. With a window (NewWindowedHistory),
// Append evicts the oldest interval once the window is full, keeping the
// store's footprint constant over an unbounded run.
type History struct {
	mu         sync.Mutex
	intervalUS float64
	intervals  int
	window     int // max retained intervals; 0 = unbounded
	evicted    int // intervals dropped from the front of every series
	counts     map[string][]float64

	// Clustered mode (NewClusteredHistory): per-cluster series replace the
	// per-template series above, and per-template state shrinks to one
	// recency-weighted fan-out weight. See clustered.go.
	clusterer     *Clusterer
	clusterCounts [][]float64
	weights       map[string]float64
	clusterWeight []float64
	wScale        float64
}

// NewHistory creates an empty, unbounded history with the given interval
// length.
func NewHistory(intervalUS float64) *History {
	return &History{intervalUS: intervalUS, counts: make(map[string][]float64)}
}

// NewWindowedHistory creates a history that retains at most maxIntervals
// recent intervals, evicting the oldest on Append once full — the
// incrementally-fed store the online loop keeps its forecasting state in.
// maxIntervals <= 0 means unbounded.
func NewWindowedHistory(intervalUS float64, maxIntervals int) *History {
	h := NewHistory(intervalUS)
	h.window = maxIntervals
	return h
}

// IntervalUS returns the interval length.
func (h *History) IntervalUS() float64 { return h.intervalUS }

// Len returns the number of retained intervals (capped at the window).
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.intervals
}

// Evicted returns how many intervals a windowed history has dropped from
// the front of its series since creation.
func (h *History) Evicted() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evicted
}

// Append records one interval's per-template counts. Templates absent from
// the map count zero for the interval. When the history is windowed and
// full, the oldest interval is evicted, and templates with no arrivals
// anywhere in the retained window are forgotten entirely (so unbounded
// runs with template churn keep a bounded footprint).
func (h *History) Append(counts map[string]float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.intervals++
	if h.clusterer != nil {
		h.appendClustered(counts)
		return
	}
	for name := range counts {
		if _, ok := h.counts[name]; !ok {
			h.counts[name] = make([]float64, h.intervals-1)
		}
	}
	for name, series := range h.counts {
		h.counts[name] = append(series, counts[name])
	}
	if h.window > 0 && h.intervals > h.window {
		drop := h.intervals - h.window
		for name, series := range h.counts {
			// Re-slice into a fresh array so previously returned Series
			// copies and the retained tail never alias evicted storage.
			tail := append([]float64(nil), series[drop:]...)
			live := false
			for _, v := range tail {
				if v != 0 {
					live = true
					break
				}
			}
			if live {
				h.counts[name] = tail
			} else {
				delete(h.counts, name)
			}
		}
		h.intervals = h.window
		h.evicted += drop
	}
}

// Series returns a copy of one template's count series.
func (h *History) Series(template string) []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.counts[template]...)
}

// Templates lists the observed template names, sorted.
func (h *History) Templates() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.counts))
	for name := range h.counts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Forecaster predicts future interval volumes from a history.
type Forecaster struct {
	// Season is the seasonal period in intervals (0 disables the seasonal
	// component).
	Season int
	// Window bounds how much history the trend component fits (0 = all).
	Window int
}

// linearTrend fits y = a + b*t by least squares over the series tail and
// extrapolates `ahead` steps past the end.
func linearTrend(series []float64, window, ahead int) float64 {
	n := len(series)
	if n == 0 {
		return 0
	}
	start := 0
	if window > 0 && n > window {
		start = n - window
	}
	xs := series[start:]
	m := float64(len(xs))
	if m == 1 {
		return xs[0]
	}
	var sumT, sumY, sumTT, sumTY float64
	for i, y := range xs {
		t := float64(i)
		sumT += t
		sumY += y
		sumTT += t * t
		sumTY += t * y
	}
	denom := m*sumTT - sumT*sumT
	if math.Abs(denom) < 1e-12 {
		return sumY / m
	}
	b := (m*sumTY - sumT*sumY) / denom
	a := (sumY - b*sumT) / m
	return a + b*(float64(len(xs)-1)+float64(ahead))
}

// Forecast predicts the template's volume for the next horizon intervals.
// The prediction ensembles a linear trend with the value one season ago
// (when a full season of history exists), mirroring the hybrid design of
// query-volume forecasters.
func (f Forecaster) Forecast(h *History, template string, horizon int) []float64 {
	return f.forecastSeries(h.Series(template), horizon)
}

// forecastSeries is the shared per-series predictor behind Forecast and
// ForecastClusters. It is total over degenerate inputs — which clustering
// makes routine (a cluster founded this interval has a series that is all
// zeros except the newest point): empty and single-point series, all-zero
// series, and series carrying NaN/Inf elements all yield finite,
// non-negative predictions, never NaN or Inf.
func (f Forecaster) forecastSeries(series []float64, horizon int) []float64 {
	series = sanitizeSeries(series)
	out := make([]float64, horizon)
	for ahead := 1; ahead <= horizon; ahead++ {
		trend := linearTrend(series, f.Window, ahead)
		pred := trend
		if f.Season > 0 && len(series) >= f.Season {
			idx := len(series) + ahead - 1 - f.Season
			for idx >= len(series) {
				idx -= f.Season
			}
			if idx >= 0 {
				pred = (trend + series[idx]) / 2
			}
		}
		if pred < 0 || math.IsNaN(pred) || math.IsInf(pred, 0) {
			pred = 0
		}
		out[ahead-1] = pred
	}
	return out
}

// sanitizeSeries returns the series with non-finite elements replaced by 0
// (sharing the input when nothing needs replacing). Degenerate upstream
// inputs must not poison the least-squares fit with NaN/Inf.
func sanitizeSeries(series []float64) []float64 {
	for i, v := range series {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			out := append([]float64(nil), series...)
			for j := i; j < len(out); j++ {
				if math.IsNaN(out[j]) || math.IsInf(out[j], 0) {
					out[j] = 0
				}
			}
			return out
		}
	}
	return series
}

// ForecastAll predicts every observed template.
func (f Forecaster) ForecastAll(h *History, horizon int) map[string][]float64 {
	out := make(map[string][]float64)
	for _, name := range h.Templates() {
		out[name] = f.Forecast(h, name, horizon)
	}
	return out
}

// MAPE computes the mean absolute percentage error of predictions against
// actuals (denominator floored at 1 query). It is total: mismatched
// lengths compare only the overlapping prefix, empty input or an all-zero
// actual series yields a finite value, and non-finite elements (NaN/Inf
// from degenerate upstream models) are skipped rather than propagated, so
// the result is always a defined, finite number.
func MAPE(pred, actual []float64) float64 {
	n := len(pred)
	if len(actual) < n {
		n = len(actual)
	}
	if n == 0 {
		return 0
	}
	total, counted := 0.0, 0
	for i := 0; i < n; i++ {
		p, a := pred[i], actual[i]
		if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(a) || math.IsInf(a, 0) {
			continue
		}
		denom := math.Max(1, math.Abs(a))
		total += math.Abs(p-a) / denom
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
