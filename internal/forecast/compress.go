// Workload compression: forecasting and planning cost must not grow with
// the raw template population. A production trace can carry 10^5..10^6
// distinct statements, but most of them are structural near-duplicates; a
// bounded set of cluster representatives preserves forecast and tuning
// quality while making the optimizer-side cost a function of K, not N
// (the WAter line of workload-compression-based tuning).
//
// The Clusterer here is deliberately RNG-free: streaming leader clustering
// keyed first by exact plan fingerprint and then by feature-vector
// proximity. Given the same registration order it always produces the same
// cluster IDs — the property the drive loop's bit-for-bit replay digests
// rest on — and it never exceeds its K bound: once K leaders exist, new
// templates join the nearest cluster unconditionally.
package forecast

import (
	"hash/fnv"
	"math"
	"sync"
)

// DefaultClusterTolerance is the relative feature-space distance within
// which a new template joins an existing leader instead of founding a new
// cluster. Distances are normalized (see featureDistance), so the default
// admits templates whose OU feature mass differs by roughly a quarter.
const DefaultClusterTolerance = 0.25

// clusterInfo is one cluster's state: the leader (first member, whose
// representative plan stands in for every member at forecast and planning
// time), its identity key, and the member roster in assignment order.
type clusterInfo struct {
	leader  string
	fp      uint64
	feat    []float64
	members []string
}

// Clusterer assigns query templates to a bounded set of clusters with
// deterministic streaming leader clustering:
//
//  1. a template whose plan fingerprint exactly matches an existing
//     cluster's leader joins that cluster (O(1));
//  2. otherwise the nearest leader by normalized feature distance within
//     Tolerance adopts it (ties break toward the lowest cluster ID);
//  3. otherwise, while fewer than K clusters exist, the template founds a
//     new cluster and becomes its leader;
//  4. at the K bound, the template joins the nearest leader regardless of
//     distance — the bound is hard.
//
// There is no randomness anywhere in the path: identical registration
// sequences yield identical cluster IDs, which is what keeps seeded drive
// replays bit-for-bit stable. A Clusterer is safe for concurrent use.
type Clusterer struct {
	mu        sync.Mutex
	max       int
	tolerance float64
	byFP      map[uint64]int
	assign    map[string]int
	clusters  []clusterInfo
}

// NewClusterer returns an empty clusterer bounded at maxClusters
// (values < 1 are raised to 1). tolerance <= 0 selects
// DefaultClusterTolerance.
func NewClusterer(maxClusters int, tolerance float64) *Clusterer {
	if maxClusters < 1 {
		maxClusters = 1
	}
	if tolerance <= 0 {
		tolerance = DefaultClusterTolerance
	}
	return &Clusterer{
		max:       maxClusters,
		tolerance: tolerance,
		byFP:      make(map[uint64]int),
		assign:    make(map[string]int),
	}
}

// MaxClusters returns the K bound.
func (c *Clusterer) MaxClusters() int { return c.max }

// Len returns the number of live clusters (always <= MaxClusters).
func (c *Clusterer) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.clusters)
}

// Assigned returns the number of registered templates.
func (c *Clusterer) Assigned() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.assign)
}

// Assign registers a template under its plan fingerprint and feature
// vector and returns its cluster ID. Re-assigning a known template returns
// its existing ID without consulting the key, so a template's cluster never
// moves once assigned (predictions fanned back out to it stay attributable).
// A nil feature vector is legal and treated as the zero vector.
func (c *Clusterer) Assign(name string, fp uint64, feat []float64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.assign[name]; ok {
		return id
	}
	id, founded := c.place(fp, feat)
	if founded {
		c.clusters = append(c.clusters, clusterInfo{
			leader: name, fp: fp, feat: append([]float64(nil), feat...),
		})
		c.byFP[fp] = id
	}
	c.assign[name] = id
	c.clusters[id].members = append(c.clusters[id].members, name)
	return id
}

// AssignOrphan registers a template that has no plan: the fingerprint is
// derived from the name, the feature vector is empty. Used for template
// names that surface in observations before any plan is known.
func (c *Clusterer) AssignOrphan(name string) int {
	h := fnv.New64a()
	h.Write([]byte(name))
	return c.Assign(name, h.Sum64(), nil)
}

// place picks the cluster a new key lands in; founded reports that the ID
// is a brand-new cluster the caller must initialize.
func (c *Clusterer) place(fp uint64, feat []float64) (id int, founded bool) {
	if id, ok := c.byFP[fp]; ok {
		return id, false
	}
	nearest, nearestDist := -1, math.Inf(1)
	for i := range c.clusters {
		if d := featureDistance(feat, c.clusters[i].feat); d < nearestDist {
			nearest, nearestDist = i, d
		}
	}
	if nearest >= 0 && nearestDist <= c.tolerance {
		return nearest, false
	}
	if len(c.clusters) < c.max {
		return len(c.clusters), true
	}
	if nearest < 0 {
		nearest = 0
	}
	return nearest, false
}

// Lookup returns the template's cluster ID if it has been assigned.
func (c *Clusterer) Lookup(name string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.assign[name]
	return id, ok
}

// Leader returns the representative template of a cluster ("" for an
// unknown ID).
func (c *Clusterer) Leader(id int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.clusters) {
		return ""
	}
	return c.clusters[id].leader
}

// MemberCount returns a cluster's roster size without copying it (0 for an
// unknown ID) — the hot-path alternative to len(Members(id)).
func (c *Clusterer) MemberCount(id int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.clusters) {
		return 0
	}
	return len(c.clusters[id].members)
}

// Members returns a copy of a cluster's member roster in assignment order
// (nil for an unknown ID). The leader is always members[0].
func (c *Clusterer) Members(id int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.clusters) {
		return nil
	}
	return append([]string(nil), c.clusters[id].members...)
}

// featureDistance is the normalized Euclidean distance between two feature
// vectors: ||a-b|| / (||a|| + ||b||), with unequal lengths zero-padded. The
// normalization makes the tolerance scale-free — a template with 10% more
// estimated rows in every OU is close no matter how large the absolute
// feature values are. Two zero (or nil) vectors are at distance 0;
// non-finite components are ignored.
func featureDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var diff, na, nb float64
	for i := 0; i < n; i++ {
		var av, bv float64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		if math.IsNaN(av) || math.IsInf(av, 0) || math.IsNaN(bv) || math.IsInf(bv, 0) {
			continue
		}
		d := av - bv
		diff += d * d
		na += av * av
		nb += bv * bv
	}
	denom := math.Sqrt(na) + math.Sqrt(nb)
	if denom == 0 {
		return 0
	}
	return math.Sqrt(diff) / denom
}
