package forecast

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// feat builds a simple feature vector with the given magnitude.
func feat(scale float64) []float64 { return []float64{scale, 2 * scale, 0, scale / 2} }

func TestClustererFingerprintFastPath(t *testing.T) {
	c := NewClusterer(8, 0)
	id := c.Assign("a", 42, feat(100))
	// Same fingerprint, wildly different features: the exact-match path
	// wins before any distance is computed.
	if got := c.Assign("b", 42, feat(1e9)); got != id {
		t.Fatalf("same-fingerprint template got cluster %d, want %d", got, id)
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
}

func TestClustererToleranceJoin(t *testing.T) {
	c := NewClusterer(8, 0.25)
	id := c.Assign("leader", 1, feat(100))
	// 10% larger features: well within the normalized tolerance.
	if got := c.Assign("near", 2, feat(110)); got != id {
		t.Fatalf("near template founded cluster %d, want join %d", got, id)
	}
	// 100x larger: far outside tolerance, founds its own cluster.
	if got := c.Assign("far", 3, feat(10000)); got == id {
		t.Fatalf("far template joined cluster %d, want a new cluster", id)
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
}

func TestClustererBoundIsHard(t *testing.T) {
	const k = 4
	c := NewClusterer(k, 0.01)
	for i := 0; i < 100; i++ {
		// Each template's features are far from every other's, so without
		// the bound each would found its own cluster.
		id := c.Assign(fmt.Sprintf("t%03d", i), uint64(i+1), feat(math.Pow(10, float64(i))))
		if id < 0 || id >= k {
			t.Fatalf("template %d assigned cluster %d, outside [0,%d)", i, id, k)
		}
	}
	if c.Len() > k {
		t.Fatalf("Len() = %d exceeds bound %d", c.Len(), k)
	}
	if c.Assigned() != 100 {
		t.Fatalf("Assigned() = %d, want 100", c.Assigned())
	}
}

func TestClustererStableReassignment(t *testing.T) {
	c := NewClusterer(8, 0)
	id := c.Assign("a", 7, feat(10))
	// Re-assigning with a different key must NOT move the template.
	if got := c.Assign("a", 99, feat(1e6)); got != id {
		t.Fatalf("re-assignment moved template to %d, want %d", got, id)
	}
	if c.Assigned() != 1 {
		t.Fatalf("Assigned() = %d, want 1", c.Assigned())
	}
}

func TestClustererDeterministicOrder(t *testing.T) {
	build := func() []int {
		c := NewClusterer(4, 0.1)
		ids := make([]int, 0, 20)
		for i := 0; i < 20; i++ {
			ids = append(ids, c.Assign(fmt.Sprintf("t%02d", i), uint64(i*31+1), feat(float64(1+i*i*100))))
		}
		return ids
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same registration order produced different IDs:\n%v\n%v", a, b)
	}
}

func TestClustererMembersRoundTrip(t *testing.T) {
	c := NewClusterer(4, 0)
	names := []string{"w", "x", "y", "z"}
	for i, n := range names {
		c.Assign(n, uint64(i%2+1), feat(float64(100+i)))
	}
	seen := map[string]bool{}
	for id := 0; id < c.Len(); id++ {
		members := c.Members(id)
		if len(members) == 0 {
			t.Fatalf("cluster %d has no members", id)
		}
		if c.Leader(id) != members[0] {
			t.Fatalf("cluster %d leader %q != members[0] %q", id, c.Leader(id), members[0])
		}
		for _, m := range members {
			got, ok := c.Lookup(m)
			if !ok || got != id {
				t.Fatalf("member %q of cluster %d looks up as (%d,%v)", m, id, got, ok)
			}
			seen[m] = true
		}
	}
	for _, n := range names {
		if !seen[n] {
			t.Fatalf("template %q missing from every member roster", n)
		}
	}
}

func TestClustererOrphan(t *testing.T) {
	c := NewClusterer(4, 0)
	id := c.AssignOrphan("ghost")
	if got, ok := c.Lookup("ghost"); !ok || got != id {
		t.Fatalf("orphan lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
	if got := c.AssignOrphan("ghost"); got != id {
		t.Fatalf("orphan re-assignment = %d, want %d", got, id)
	}
}

func TestFeatureDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"both nil", nil, nil, 0},
		{"identical", []float64{1, 2}, []float64{1, 2}, 0},
		{"zero vs zero-padded", []float64{0, 0}, nil, 0},
		{"opposite", []float64{1}, []float64{-1}, 1},
		{"nan ignored", []float64{math.NaN(), 3}, []float64{5, 3}, 0},
		{"inf ignored", []float64{math.Inf(1), 3}, []float64{7, 3}, 0},
	}
	for _, tc := range tests {
		if got := featureDistance(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: featureDistance = %g, want %g", tc.name, got, tc.want)
		}
	}
	// Scale-free: the same relative perturbation lands at the same distance
	// regardless of magnitude.
	d1 := featureDistance(feat(10), feat(11))
	d2 := featureDistance(feat(1e8), feat(1.1e8))
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("distance is not scale-free: %g vs %g", d1, d2)
	}
}

func TestClusteredHistoryAppendAndSeries(t *testing.T) {
	c := NewClusterer(4, 0)
	c.Assign("a1", 1, feat(100))
	c.Assign("a2", 1, feat(100)) // same fingerprint → same cluster
	c.Assign("b", 2, feat(1e6))  // far → own cluster
	h := NewClusteredHistory(1e6, 4, c)

	h.Append(map[string]float64{"a1": 10, "a2": 30, "b": 5})
	h.Append(map[string]float64{"a1": 20, "b": 7})

	if h.NumClusters() != 2 {
		t.Fatalf("NumClusters() = %d, want 2", h.NumClusters())
	}
	if got := h.ClusterSeries(0); !reflect.DeepEqual(got, []float64{40, 20}) {
		t.Fatalf("cluster 0 series = %v, want [40 20]", got)
	}
	if got := h.ClusterSeries(1); !reflect.DeepEqual(got, []float64{5, 7}) {
		t.Fatalf("cluster 1 series = %v, want [5 7]", got)
	}
}

func TestClusteredHistoryLateFoundingZeroPads(t *testing.T) {
	c := NewClusterer(4, 0)
	h := NewClusteredHistory(1e6, 8, c)
	h.Append(map[string]float64{"a": 10})
	h.Append(map[string]float64{"a": 10, "late": 3}) // orphan founds cluster at interval 2
	for id := 0; id < h.NumClusters(); id++ {
		if got := len(h.ClusterSeries(id)); got != 2 {
			t.Fatalf("cluster %d series length = %d, want 2 (zero-padded)", id, got)
		}
	}
}

func TestClusteredHistoryWindowEviction(t *testing.T) {
	c := NewClusterer(4, 0)
	h := NewClusteredHistory(1e6, 3, c)
	for i := 0; i < 6; i++ {
		h.Append(map[string]float64{"a": float64(i + 1)})
	}
	if got := h.ClusterSeries(0); !reflect.DeepEqual(got, []float64{4, 5, 6}) {
		t.Fatalf("windowed series = %v, want [4 5 6]", got)
	}
	if h.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", h.Len())
	}
}

func TestClusteredHistorySharesAndFanOut(t *testing.T) {
	c := NewClusterer(4, 0)
	c.Assign("a1", 1, feat(100))
	c.Assign("a2", 1, feat(100))
	h := NewClusteredHistory(1e6, 0, c)
	h.Append(map[string]float64{"a1": 30, "a2": 10})

	s1, s2 := h.Share("a1"), h.Share("a2")
	if math.Abs(s1-0.75) > 1e-9 || math.Abs(s2-0.25) > 1e-9 {
		t.Fatalf("shares = %g, %g, want 0.75, 0.25", s1, s2)
	}
	if math.Abs(s1+s2-1) > 1e-9 {
		t.Fatalf("cluster shares sum to %g, want 1", s1+s2)
	}

	fan := h.FanOut([]float64{100}, []string{"a1", "a2", "unknown"})
	if math.Abs(fan["a1"]-75) > 1e-6 || math.Abs(fan["a2"]-25) > 1e-6 {
		t.Fatalf("fan-out = %v, want a1:75 a2:25", fan)
	}
	if fan["unknown"] != 0 {
		t.Fatalf("unknown template fanned out %g, want 0", fan["unknown"])
	}
}

func TestClusteredHistorySharesTrackRecency(t *testing.T) {
	c := NewClusterer(4, 0)
	c.Assign("a1", 1, feat(100))
	c.Assign("a2", 1, feat(100))
	h := NewClusteredHistory(1e6, 0, c)
	// a1 dominated history, then a2 takes over; recency weighting must pull
	// a2's share above its lifetime-average 50%.
	for i := 0; i < 10; i++ {
		h.Append(map[string]float64{"a1": 100, "a2": 0})
	}
	for i := 0; i < 10; i++ {
		h.Append(map[string]float64{"a1": 0, "a2": 100})
	}
	if s2 := h.Share("a2"); s2 < 0.8 {
		t.Fatalf("post-shift share of a2 = %g, want > 0.8 (recency weighting)", s2)
	}
}

func TestClusteredHistoryWeightRenormalization(t *testing.T) {
	c := NewClusterer(2, 0)
	c.Assign("a1", 1, feat(100))
	c.Assign("a2", 1, feat(100))
	h := NewClusteredHistory(1e6, 2, c)
	// Enough intervals that wScale crosses weightRenormAt several times
	// (growth 1.25 → renorm roughly every 1547 intervals).
	for i := 0; i < 5000; i++ {
		h.Append(map[string]float64{"a1": 30, "a2": 10})
	}
	s1, s2 := h.Share("a1"), h.Share("a2")
	if math.IsNaN(s1) || math.IsInf(s1, 0) || math.Abs(s1-0.75) > 1e-6 {
		t.Fatalf("share(a1) after renormalizations = %g, want 0.75", s1)
	}
	if math.Abs(s1+s2-1) > 1e-6 {
		t.Fatalf("shares sum to %g after renormalizations, want 1", s1+s2)
	}
}

func TestForecastClusters(t *testing.T) {
	c := NewClusterer(4, 0)
	c.Assign("a", 1, feat(100))
	c.Assign("b", 2, feat(1e6))
	h := NewClusteredHistory(1e6, 0, c)
	for i := 1; i <= 5; i++ {
		h.Append(map[string]float64{"a": float64(10 * i), "b": 7})
	}
	f := Forecaster{}
	preds := f.ForecastClusters(h, 2)
	if len(preds) != 2 {
		t.Fatalf("forecast covers %d clusters, want 2", len(preds))
	}
	// Cluster 0 trends up linearly; the next point continues the trend.
	if p := preds[0][0]; p < 50 || p > 70 {
		t.Fatalf("trending cluster forecast = %g, want ~60", p)
	}
	// Cluster 1 is flat.
	if p := preds[1][0]; math.Abs(p-7) > 1 {
		t.Fatalf("flat cluster forecast = %g, want ~7", p)
	}
	for id, series := range preds {
		for _, v := range series {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("cluster %d forecast contains %g", id, v)
			}
		}
	}
}
