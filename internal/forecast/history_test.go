package forecast

import (
	"math"
	"sync"
	"testing"
)

// TestWindowedHistoryEviction feeds a windowed store one interval at a
// time past its capacity and checks the retained tail, the eviction
// counter, and that templates with no arrivals left in the window are
// forgotten entirely.
func TestWindowedHistoryEviction(t *testing.T) {
	h := NewWindowedHistory(1e6, 4)
	// "old" only ever appears in the first interval; "q" appears in all.
	h.Append(map[string]float64{"q": 1, "old": 9})
	for i := 2; i <= 7; i++ {
		h.Append(map[string]float64{"q": float64(i)})
	}

	if h.Len() != 4 {
		t.Fatalf("Len = %d, want the window size 4", h.Len())
	}
	if h.Evicted() != 3 {
		t.Fatalf("Evicted = %d, want 3", h.Evicted())
	}
	got := h.Series("q")
	want := []float64{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("series q = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series q = %v, want %v", got, want)
		}
	}
	if names := h.Templates(); len(names) != 1 || names[0] != "q" {
		t.Fatalf("templates = %v; 'old' left the window and must be forgotten", names)
	}
	if s := h.Series("old"); len(s) != 0 {
		t.Fatalf("evicted template still has a series: %v", s)
	}
}

// TestSeriesStableWhileAppendRuns checks the read contract: a Series
// snapshot is a copy, so concurrent Appends (including ones that trigger
// eviction) never mutate it. Run under -race this also hammers the
// store's locking from both sides.
func TestSeriesStableWhileAppendRuns(t *testing.T) {
	h := NewWindowedHistory(1e6, 8)
	for i := 1; i <= 8; i++ {
		h.Append(map[string]float64{"q": float64(i)})
	}
	snapshot := h.Series("q")
	frozen := append([]float64(nil), snapshot...)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 9; i <= 200; i++ {
			h.Append(map[string]float64{"q": float64(i)})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = h.Series("q")
			_ = h.Templates()
			_ = h.Len()
			_ = h.Evicted()
		}
	}()
	wg.Wait()

	for i := range frozen {
		if snapshot[i] != frozen[i] {
			t.Fatalf("snapshot mutated at %d: %v -> %v", i, frozen[i], snapshot[i])
		}
	}
	if h.Len() != 8 || h.Evicted() != 192 {
		t.Fatalf("after 200 appends: Len=%d Evicted=%d, want 8 and 192", h.Len(), h.Evicted())
	}
}

// TestWindowedForecasterLinearFixture pins the forecaster against a
// hand-computed fixture fed incrementally through a windowed store: after
// appending 10 + 5i for i = 0..9 into a 6-interval window, the retained
// series is 30..55 step 5, a perfect linear trend, so the next two
// predictions must be exactly 60 and 65.
func TestWindowedForecasterLinearFixture(t *testing.T) {
	h := NewWindowedHistory(1e6, 6)
	for i := 0; i < 10; i++ {
		h.Append(map[string]float64{"q": 10 + 5*float64(i)})
	}
	got := Forecaster{}.Forecast(h, "q", 2)
	if math.Abs(got[0]-60) > 1e-6 || math.Abs(got[1]-65) > 1e-6 {
		t.Fatalf("windowed linear forecast = %v, want [60 65]", got)
	}
	// The same store through ForecastAll (the loop's entry point).
	all := Forecaster{}.ForecastAll(h, 1)
	if math.Abs(all["q"][0]-60) > 1e-6 {
		t.Fatalf("ForecastAll = %v, want q -> [60]", all)
	}
}

// TestMAPEDegenerate checks MAPE is total: zero actuals, non-finite
// elements, empty and mismatched inputs all yield defined finite values.
func TestMAPEDegenerate(t *testing.T) {
	cases := []struct {
		name         string
		pred, actual []float64
		want         float64
	}{
		{"zero actual floors denominator", []float64{5}, []float64{0}, 5},
		{"all-zero actuals", []float64{2, 4}, []float64{0, 0}, 3},
		{"nan skipped", []float64{math.NaN(), 10}, []float64{1, 10}, 0},
		{"inf skipped", []float64{math.Inf(1)}, []float64{100}, 0},
		{"nan actual skipped", []float64{10}, []float64{math.NaN()}, 0},
		{"empty", nil, nil, 0},
		{"mismatched lengths use prefix", []float64{90, 7}, []float64{100}, 0.1},
	}
	for _, tc := range cases {
		got := MAPE(tc.pred, tc.actual)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: MAPE = %v, not finite", tc.name, got)
			continue
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: MAPE = %v, want %v", tc.name, got, tc.want)
		}
	}
}
