package forecast

import (
	"math"
	"testing"
)

func recordSeries(h *History, name string, values []float64) {
	for _, v := range values {
		h.Append(map[string]float64{name: v})
	}
}

func TestHistoryAppendAndSeries(t *testing.T) {
	h := NewHistory(1e6)
	h.Append(map[string]float64{"a": 10})
	h.Append(map[string]float64{"a": 20, "b": 5})
	h.Append(map[string]float64{"b": 7})
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	a := h.Series("a")
	if len(a) != 3 || a[0] != 10 || a[1] != 20 || a[2] != 0 {
		t.Fatalf("series a = %v", a)
	}
	// b appeared late: leading zeros.
	b := h.Series("b")
	if len(b) != 3 || b[0] != 0 || b[1] != 5 || b[2] != 7 {
		t.Fatalf("series b = %v", b)
	}
	names := h.Templates()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("templates = %v", names)
	}
	if h.IntervalUS() != 1e6 {
		t.Fatal("interval lost")
	}
}

func TestForecastConstantSeries(t *testing.T) {
	h := NewHistory(1e6)
	recordSeries(h, "q", []float64{50, 50, 50, 50, 50, 50})
	got := Forecaster{}.Forecast(h, "q", 3)
	for _, v := range got {
		if math.Abs(v-50) > 1e-6 {
			t.Fatalf("constant forecast = %v", got)
		}
	}
}

func TestForecastLinearTrend(t *testing.T) {
	h := NewHistory(1e6)
	series := make([]float64, 12)
	for i := range series {
		series[i] = 10 + 5*float64(i)
	}
	recordSeries(h, "q", series)
	got := Forecaster{}.Forecast(h, "q", 2)
	if math.Abs(got[0]-70) > 1e-6 || math.Abs(got[1]-75) > 1e-6 {
		t.Fatalf("trend forecast = %v, want [70 75]", got)
	}
}

func TestForecastSeasonal(t *testing.T) {
	// Daily-style cycle with period 4: flat trend + strong seasonality.
	h := NewHistory(1e6)
	cycle := []float64{100, 10, 10, 100}
	var series []float64
	for rep := 0; rep < 5; rep++ {
		series = append(series, cycle...)
	}
	recordSeries(h, "q", series)

	plain := Forecaster{}
	seasonal := Forecaster{Season: 4}
	horizon := 4
	actual := cycle

	errPlain := MAPE(plain.Forecast(h, "q", horizon), actual)
	errSeasonal := MAPE(seasonal.Forecast(h, "q", horizon), actual)
	if errSeasonal >= errPlain {
		t.Fatalf("seasonal component must help on periodic load: %v vs %v",
			errSeasonal, errPlain)
	}
}

func TestForecastNonNegative(t *testing.T) {
	h := NewHistory(1e6)
	recordSeries(h, "q", []float64{100, 80, 60, 40, 20, 0})
	got := Forecaster{}.Forecast(h, "q", 5)
	for _, v := range got {
		if v < 0 {
			t.Fatalf("negative volume forecast: %v", got)
		}
	}
}

func TestForecastWindowLimitsHistory(t *testing.T) {
	// Old regime is flat at 100; recent regime trends down steeply. A
	// windowed forecaster follows the recent regime.
	h := NewHistory(1e6)
	series := []float64{100, 100, 100, 100, 100, 100, 90, 80, 70, 60}
	recordSeries(h, "q", series)
	all := Forecaster{}.Forecast(h, "q", 1)[0]
	windowed := Forecaster{Window: 4}.Forecast(h, "q", 1)[0]
	if windowed >= all {
		t.Fatalf("windowed forecast must track the recent trend: %v vs %v", windowed, all)
	}
	if math.Abs(windowed-50) > 5 {
		t.Fatalf("windowed forecast = %v, want ~50", windowed)
	}
}

func TestForecastAllAndUnknown(t *testing.T) {
	h := NewHistory(1e6)
	recordSeries(h, "a", []float64{5, 5, 5})
	preds := Forecaster{}.ForecastAll(h, 2)
	if len(preds) != 1 || len(preds["a"]) != 2 {
		t.Fatalf("ForecastAll = %v", preds)
	}
	// Unknown template forecasts zero.
	got := Forecaster{}.Forecast(h, "ghost", 2)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("unknown template forecast = %v", got)
	}
}

func TestMAPE(t *testing.T) {
	if got := MAPE([]float64{90, 110}, []float64{100, 100}); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("MAPE = %v", got)
	}
	if MAPE(nil, nil) != 0 {
		t.Fatal("empty MAPE must be 0")
	}
}

// TestForecastDegenerateSeries pins the forecaster's totality over the
// degenerate series clustering makes routine: a cluster founded in the
// newest interval has a series that is all zeros except the last point,
// sparse members yield mostly-zero series, and upstream accounting bugs
// could inject NaN/Inf. Every case must produce finite, non-negative
// predictions for every horizon step.
func TestForecastDegenerateSeries(t *testing.T) {
	inf := math.Inf(1)
	tests := []struct {
		name   string
		series []float64
		season int
	}{
		{"empty", nil, 0},
		{"single point", []float64{7}, 0},
		{"all zero", []float64{0, 0, 0, 0}, 0},
		{"newest interval only", []float64{0, 0, 0, 0, 0, 42}, 0},
		{"newest interval only with season", []float64{0, 0, 0, 0, 0, 42}, 3},
		{"sparse", []float64{0, 9, 0, 0, 3, 0}, 0},
		{"nan elements", []float64{math.NaN(), 5, math.NaN(), 5}, 0},
		{"inf elements", []float64{inf, 5, -inf, 5}, 2},
		{"all nan", []float64{math.NaN(), math.NaN()}, 0},
		{"huge values overflow-adjacent", []float64{1e308, 1e308, 1e308}, 0},
		{"steep negative trend", []float64{1000, 100, 1}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistory(1e6)
			recordSeries(h, "q", tc.series)
			preds := (Forecaster{Season: tc.season}).Forecast(h, "q", 4)
			if len(preds) != 4 {
				t.Fatalf("horizon = %d, want 4", len(preds))
			}
			for i, p := range preds {
				if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
					t.Fatalf("prediction[%d] = %v for series %v", i, p, tc.series)
				}
			}
		})
	}
}

// TestForecastDegenerateClusterSeries runs the same totality contract
// through the clustered path: counts carrying NaN/Inf/negative values are
// dropped at Append, and forecasts over the resulting series stay finite.
func TestForecastDegenerateClusterSeries(t *testing.T) {
	c := NewClusterer(4, 0)
	h := NewClusteredHistory(1e6, 0, c)
	h.Append(map[string]float64{"a": math.NaN(), "b": math.Inf(1), "c": -5})
	h.Append(map[string]float64{"a": 10, "b": 0, "c": 3})
	for _, series := range (Forecaster{}).ForecastClusters(h, 3) {
		for i, p := range series {
			if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
				t.Fatalf("cluster prediction[%d] = %v", i, p)
			}
		}
	}
	// The poisoned first interval must have been recorded as zero volume.
	for id := 0; id < h.NumClusters(); id++ {
		if s := h.ClusterSeries(id); len(s) > 0 && s[0] != 0 {
			t.Fatalf("cluster %d first interval = %v, want 0 (non-finite counts dropped)", id, s[0])
		}
	}
}

func TestMAPENonFinite(t *testing.T) {
	inf := math.Inf(1)
	tests := []struct {
		name         string
		pred, actual []float64
		want         float64
	}{
		{"nan pred skipped", []float64{math.NaN(), 100}, []float64{100, 100}, 0},
		{"inf actual skipped", []float64{100, 90}, []float64{inf, 100}, 0.1},
		{"all non-finite", []float64{math.NaN()}, []float64{inf}, 0},
		{"zero actual floored", []float64{3}, []float64{0}, 3},
	}
	for _, tc := range tests {
		got := MAPE(tc.pred, tc.actual)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: MAPE = %v, want finite", tc.name, got)
			continue
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: MAPE = %v, want %v", tc.name, got, tc.want)
		}
	}
}
