package forecast

import (
	"fmt"
	"testing"
)

// FuzzClusterAssign drives a bounded clusterer with arbitrary
// fingerprint/feature streams and checks the structural invariants: every
// template is assigned, the K bound is hard, every assignment is stable on
// re-registration, and the member rosters round-trip through Lookup.
func FuzzClusterAssign(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), []byte{0, 0, 0, 0})
	f.Add(uint8(16), []byte{255, 1, 128, 7, 3, 3, 3})
	f.Fuzz(func(t *testing.T, k uint8, data []byte) {
		maxK := int(k%16) + 1
		c := NewClusterer(maxK, 0.25)
		ids := make(map[string]int)
		for i, b := range data {
			if i >= 64 {
				break
			}
			name := fmt.Sprintf("t%03d", i)
			fp := uint64(b%8) + 1 // small space → frequent fingerprint collisions
			feat := []float64{float64(b), float64(b) * 3, float64(i % 5)}
			id := c.Assign(name, fp, feat)
			if id < 0 || id >= maxK {
				t.Fatalf("assignment %d outside [0,%d)", id, maxK)
			}
			if id >= c.Len() {
				t.Fatalf("assignment %d beyond live clusters %d", id, c.Len())
			}
			if again := c.Assign(name, fp+1, nil); again != id {
				t.Fatalf("re-assignment moved %q: %d -> %d", name, id, again)
			}
			ids[name] = id
		}
		if c.Len() > maxK {
			t.Fatalf("%d clusters exceed bound %d", c.Len(), maxK)
		}
		if c.Assigned() != len(ids) {
			t.Fatalf("Assigned() = %d, want %d", c.Assigned(), len(ids))
		}
		// Round trip: every assignment appears in exactly one roster, and
		// every roster member looks up to that roster's cluster.
		seen := make(map[string]int)
		for id := 0; id < c.Len(); id++ {
			members := c.Members(id)
			if len(members) == 0 {
				t.Fatalf("live cluster %d has no members", id)
			}
			if c.Leader(id) != members[0] {
				t.Fatalf("cluster %d leader %q != first member %q", id, c.Leader(id), members[0])
			}
			for _, m := range members {
				if prev, dup := seen[m]; dup {
					t.Fatalf("%q appears in rosters %d and %d", m, prev, id)
				}
				seen[m] = id
				if got, ok := c.Lookup(m); !ok || got != id {
					t.Fatalf("roster member %q looks up as (%d,%v), want (%d,true)", m, got, ok, id)
				}
			}
		}
		for name, id := range ids {
			if seen[name] != id {
				t.Fatalf("%q assigned to %d but rostered in %d", name, id, seen[name])
			}
		}
	})
}
