package mb2

// One benchmark per table and figure of the paper's evaluation (Sec 8).
// Each regenerates the experiment on the quick configuration and reports
// its headline numbers as custom benchmark metrics, so
//
//	go test -bench . -benchmem -benchtime 1x
//
// doubles as the reproduction run. cmd/mb2-bench prints the full tables.

import (
	"testing"

	"mb2/internal/experiments"
)

func pipelineB(b *testing.B) *experiments.Pipeline {
	b.Helper()
	p, err := experiments.QuickPipeline()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTab02Overhead regenerates Table 2: behavior-model computation
// and storage cost.
func BenchmarkTab02Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.BuildPipeline(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Tab2(p)
		b.ReportMetric(float64(rows[0].DataBytes), "ou-data-B")
		b.ReportMetric(float64(rows[0].ModelBytes), "ou-models-B")
		b.ReportMetric(rows[0].RunnerWallMS, "runner-ms")
		b.ReportMetric(rows[0].TrainWallMS, "train-ms")
	}
}

// BenchmarkFig01IndexBuildExample regenerates Fig 1: TPC-C latency while
// building the CUSTOMER index with 4 vs 8 threads.
func BenchmarkFig01IndexBuildExample(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((r.End4-r.Start4)/1e3, "build4T-ms")
		b.ReportMetric((r.End8-r.Start8)/1e3, "build8T-ms")
		base := r.Latency4[0]
		b.ReportMetric(r.Latency4[5]/base, "impact4T-x")
		b.ReportMetric(r.Latency8[5]/base, "impact8T-x")
	}
}

// BenchmarkFig05OUModelAccuracy regenerates Fig 5: per-OU test relative
// error across ML algorithms.
func BenchmarkFig05OUModelAccuracy(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		under := 0
		for _, errs := range r.Errors {
			best := errs[0]
			for _, e := range errs {
				if e < best {
					best = e
				}
			}
			if best < 0.2 {
				under++
			}
		}
		b.ReportMetric(float64(under)/float64(len(r.Errors))*100, "OUs-under-20pct-%")
	}
}

// BenchmarkFig06LabelAccuracy regenerates Fig 6: per-label error with and
// without output-label normalization.
func BenchmarkFig06LabelAccuracy(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(p, []string{"gbm"})
		if err != nil {
			b.Fatal(err)
		}
		var with, without float64
		for l := range r.WithNorm {
			with += r.WithNorm[l][0]
			without += r.WithoutNorm[l][0]
		}
		b.ReportMetric(with/float64(len(r.WithNorm)), "err-normalized")
		b.ReportMetric(without/float64(len(r.WithoutNorm)), "err-raw")
	}
}

// BenchmarkFig07aOLAPGeneralization regenerates Fig 7a: QPPNet vs MB2 on
// TPC-H at 0.1x/1x/10x scale.
func BenchmarkFig07aOLAPGeneralization(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7a(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].QPPNet, "qppnet-10G-err")
		b.ReportMetric(rows[2].MB2, "mb2-10G-err")
		b.ReportMetric(rows[2].MB2NoNorm, "mb2nonorm-10G-err")
	}
}

// BenchmarkFig07bOLTPGeneralization regenerates Fig 7b: OLTP query runtime
// prediction on TPC-C/TATP/SmallBank.
func BenchmarkFig07bOLTPGeneralization(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7b(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].QPPNet, "qppnet-smallbank-us")
		b.ReportMetric(rows[2].MB2, "mb2-smallbank-us")
	}
}

// BenchmarkFig08aInterferenceThreads regenerates Fig 8a: interference-model
// accuracy at untrained thread counts.
func BenchmarkFig08aInterferenceThreads(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8a(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Actual, "actual-16T")
		b.ReportMetric(last.Estimated, "estimated-16T")
	}
}

// BenchmarkFig08bInterferenceSizes regenerates Fig 8b: interference-model
// generalization across dataset sizes.
func BenchmarkFig08bInterferenceSizes(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8b(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Actual, "actual-10G")
		b.ReportMetric(rows[1].Estimated, "estimated-10G")
	}
}

// BenchmarkFig09aAdaptation regenerates Fig 9a: single-OU retraining under
// simulated DBMS updates.
func BenchmarkFig09aAdaptation(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9a(p)
		if err != nil {
			b.Fatal(err)
		}
		// Stale vs refreshed model on the fastest DBMS version.
		last := len(r.Versions) - 1
		b.ReportMetric(r.Errors[last][0], "stale-model-err")
		b.ReportMetric(r.Errors[last][last], "fresh-model-err")
		b.ReportMetric(float64(r.FullWall)/float64(r.RetrainWall+1), "retrain-speedup-x")
	}
}

// BenchmarkFig09bNoisyCardinality regenerates Fig 9b: robustness to 30%
// cardinality noise.
func BenchmarkFig09bNoisyCardinality(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9b(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Accurate, "accurate-1G-err")
		b.ReportMetric(rows[1].Noisy, "noisy-1G-err")
	}
}

// BenchmarkFig10HardwareContext regenerates Fig 10: CPU-frequency hardware
// context.
func BenchmarkFig10HardwareContext(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(p)
		if err != nil {
			b.Fatal(err)
		}
		// Error at the frequency farthest from base training (1.6 GHz).
		b.ReportMetric(r.TPCH[0].TrainedBase, "tpch-1.6GHz-base-err")
		b.ReportMetric(r.TPCH[0].TrainedMany, "tpch-1.6GHz-multi-err")
	}
}

// BenchmarkFig11EndToEnd regenerates Fig 11a/b: the end-to-end self-driving
// scenario with the 8-thread build.
func BenchmarkFig11EndToEnd(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(p, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((r.BuildEndS-r.BuildStartS)*1e3, "build-actual-ms")
		b.ReportMetric((r.PredBuildEndS-r.BuildStartS)*1e3, "build-predicted-ms")
		b.ReportMetric(r.Decision.BenefitRatio, "predicted-benefit-x")
	}
}

// BenchmarkFig11cFourThreadBuild regenerates Fig 11c: the alternative
// 4-thread plan (longer build, smaller impact).
func BenchmarkFig11cFourThreadBuild(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(p, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((r.BuildEndS-r.BuildStartS)*1e3, "build-actual-ms")
		b.ReportMetric(r.Decision.ImpactRatio, "predicted-impact-x")
	}
}

// BenchmarkAblationInterferenceNorm measures the interference model's input
// normalization (DESIGN.md ablation).
func BenchmarkAblationInterferenceNorm(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationInterferenceNorm(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NormalizedErr, "normalized-err")
		b.ReportMetric(r.RawErr, "raw-err")
	}
}

// BenchmarkAblationModelSelection measures per-OU model selection vs fixed
// algorithm families.
func BenchmarkAblationModelSelection(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationModelSelection(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SelectionErr, "selection-err")
		worst := 0.0
		for _, e := range r.FixedErrs {
			if e > worst {
				worst = e
			}
		}
		b.ReportMetric(worst, "worst-fixed-err")
	}
}

// BenchmarkAblationTrimmedMean measures robust label derivation under
// measurement noise.
func BenchmarkAblationTrimmedMean(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationTrimmedMean(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TrimmedErr, "trimmed-err")
		b.ReportMetric(r.PlainErr, "plain-err")
	}
}

// BenchmarkAblationInterferenceSummaries compares the paper's sum/deviation
// interference summaries against a percentile-extended variant (Sec 5.1).
func BenchmarkAblationInterferenceSummaries(b *testing.B) {
	p := pipelineB(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationInterferenceSummaries(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.StandardErr, "standard-err")
		b.ReportMetric(r.WithPercentile, "percentile-err")
	}
}
