// Package mb2 is a from-scratch Go reproduction of "MB2: Decomposed
// Behavior Modeling for Self-Driving Database Management Systems"
// (SIGMOD 2021): an in-memory MVCC DBMS substrate with a deterministic
// hardware simulator, the MB2 behavior-modeling framework (OU decomposition,
// OU-runners, OU-models, interference model), the QPPNet baseline, the four
// evaluation benchmarks, and a harness that regenerates every table and
// figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench . -benchtime 1x
package mb2
