module mb2

go 1.22
